// Package qpe implements textbook quantum phase estimation over
// Trotterized Hamiltonian evolution — the second algorithm the paper's
// workflow executes besides VQE. The system register holds an (approximate)
// eigenstate; an ancilla register accumulates the phase of U = e^{iHt}
// through controlled evolutions and an inverse QFT.
package qpe

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ansatz"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/pauli"
	"repro/internal/state"
)

// Options configures a QPE run.
type Options struct {
	// AncillaQubits sets the phase resolution: 2π/(Time·2^A).
	AncillaQubits int
	// Time is the evolution time t in U = e^{iHt}. |E|·t must stay below π
	// to avoid phase wrap-around; Auto-scaled when zero using the
	// Hamiltonian 1-norm.
	Time float64
	// TrotterSteps per controlled power (default 1; exact when all terms
	// commute).
	TrotterSteps int
	// Workers for the state engine.
	Workers int
}

// Result reports the estimate.
type Result struct {
	Energy     float64 // from the most probable ancilla outcome
	Phase      float64 // φ ∈ [0,1)
	Confidence float64 // probability mass of that outcome
	Resolution float64 // energy quantum 2π/(t·2^A)
	// TopOutcomes lists the most probable (phase, probability) pairs.
	TopOutcomes []Outcome
}

// Outcome is one ancilla measurement result.
type Outcome struct {
	Bits        uint64
	Phase       float64
	Energy      float64
	Probability float64
}

// AppendControlledPauliExp appends a controlled exp(−i·θ/2·P) (control on
// qubit ctrl, which must lie outside P's support): shared basis rotations,
// CNOT staircase, controlled-RZ, unwind.
func AppendControlledPauliExp(c *circuit.Circuit, ctrl int, theta float64, p pauli.String) {
	sup := p.Support()
	if len(sup) == 0 {
		return
	}
	for _, q := range sup {
		switch p.At(q) {
		case 'X':
			c.H(q)
		case 'Y':
			c.Sdg(q).H(q)
		}
	}
	last := sup[len(sup)-1]
	for i := 0; i+1 < len(sup); i++ {
		c.CX(sup[i], sup[i+1])
	}
	c.CRZ(theta, ctrl, last)
	for i := len(sup) - 2; i >= 0; i-- {
		c.CX(sup[i], sup[i+1])
	}
	for _, q := range sup {
		switch p.At(q) {
		case 'X':
			c.H(q)
		case 'Y':
			c.H(q).S(q)
		}
	}
}

// AppendControlledEvolution appends controlled-e^{iHt} (first-order
// Trotter with the given steps). The identity component of H becomes a
// phase gate on the control qubit.
func AppendControlledEvolution(c *circuit.Circuit, ctrl int, h *pauli.Op, t float64, steps int) {
	if steps < 1 {
		steps = 1
	}
	dt := t / float64(steps)
	terms := h.Terms()
	for s := 0; s < steps; s++ {
		for _, term := range terms {
			alpha := real(term.Coeff) * dt // exp(i·alpha·P)
			if term.P.IsIdentity() {
				c.P(alpha, ctrl)
				continue
			}
			AppendControlledPauliExp(c, ctrl, -2*alpha, term.P)
		}
	}
}

// AppendInverseQFT appends the inverse quantum Fourier transform on
// qubits[0..m) where qubits[0] is the least-significant phase bit.
func AppendInverseQFT(c *circuit.Circuit, qubits []int) {
	m := len(qubits)
	// Reverse the qubit order (QFT bit reversal).
	for i := 0; i < m/2; i++ {
		c.SWAP(qubits[i], qubits[m-1-i])
	}
	for j := 0; j < m; j++ {
		for k := 0; k < j; k++ {
			angle := -math.Pi / float64(int(1)<<uint(j-k))
			c.CP(angle, qubits[k], qubits[j])
		}
		c.H(qubits[j])
	}
}

// BuildCircuit assembles the full QPE circuit on sysQubits + A qubits:
// ancillas occupy [sysQubits, sysQubits+A). The caller prepares the system
// register beforehand.
func BuildCircuit(h *pauli.Op, sysQubits int, opts Options) (*circuit.Circuit, error) {
	if opts.AncillaQubits < 1 {
		return nil, fmt.Errorf("%w: need ≥1 ancilla", core.ErrInvalidArgument)
	}
	if h.MaxQubit() >= sysQubits {
		return nil, core.QubitError(h.MaxQubit(), sysQubits)
	}
	total := sysQubits + opts.AncillaQubits
	c := circuit.New(total)
	anc := make([]int, opts.AncillaQubits)
	for i := range anc {
		anc[i] = sysQubits + i
	}
	for _, a := range anc {
		c.H(a)
	}
	// Ancilla k controls U^{2^k}.
	for k, a := range anc {
		reps := 1 << uint(k)
		AppendControlledEvolution(c, a, h, opts.Time*float64(reps), opts.TrotterSteps*reps)
	}
	AppendInverseQFT(c, anc)
	return c, nil
}

// autoTime picks t so that ‖H‖₁·t < π/2 (safe against wrap-around).
func autoTime(h *pauli.Op) float64 {
	norm := h.OneNorm()
	if norm == 0 {
		return 1
	}
	return math.Pi / (2 * norm)
}

// Estimate runs QPE with the system register prepared by prep (e.g. a
// Hartree–Fock determinant or an optimized VQE ansatz) and returns the
// energy decoded from the exact ancilla distribution.
func Estimate(h *pauli.Op, prep *circuit.Circuit, sysQubits int, opts Options) (*Result, error) {
	if opts.AncillaQubits == 0 {
		opts.AncillaQubits = 6
	}
	if opts.Time == 0 {
		opts.Time = autoTime(h)
	}
	if opts.TrotterSteps == 0 {
		opts.TrotterSteps = 1
	}
	qc, err := BuildCircuit(h, sysQubits, opts)
	if err != nil {
		return nil, err
	}
	total := sysQubits + opts.AncillaQubits
	s := state.New(total, state.Options{Workers: opts.Workers})
	if prep != nil {
		if prep.NumQubits > sysQubits {
			return nil, core.ErrDimensionMismatch
		}
		s.Run(prep)
	}
	s.Run(qc)
	return decode(s, sysQubits, opts)
}

// EstimateFromAmplitudes is Estimate with an explicit system-register
// state (e.g. an FCI eigenvector) instead of a preparation circuit.
func EstimateFromAmplitudes(h *pauli.Op, sysAmps []complex128, sysQubits int, opts Options) (*Result, error) {
	if opts.AncillaQubits == 0 {
		opts.AncillaQubits = 6
	}
	if opts.Time == 0 {
		opts.Time = autoTime(h)
	}
	if opts.TrotterSteps == 0 {
		opts.TrotterSteps = 1
	}
	if len(sysAmps) != core.Dim(sysQubits) {
		return nil, core.ErrDimensionMismatch
	}
	qc, err := BuildCircuit(h, sysQubits, opts)
	if err != nil {
		return nil, err
	}
	total := sysQubits + opts.AncillaQubits
	s := state.New(total, state.Options{Workers: opts.Workers})
	// |anc=0⟩⊗|sys⟩: system amplitudes fill the low block, rest zero.
	copy(s.Amplitudes()[:len(sysAmps)], sysAmps)
	s.Run(qc)
	return decode(s, sysQubits, opts)
}

// decode marginalizes the ancilla register and converts phases to
// energies.
func decode(s *state.State, sysQubits int, opts Options) (*Result, error) {
	a := opts.AncillaQubits
	probs := s.Probabilities()
	marginal := make([]float64, 1<<uint(a))
	for idx, p := range probs {
		marginal[idx>>uint(sysQubits)] += p
	}
	outcomes := make([]Outcome, 0, len(marginal))
	for bits, p := range marginal {
		if p < 1e-12 {
			continue
		}
		phase := float64(bits) / float64(int(1)<<uint(a))
		outcomes = append(outcomes, Outcome{
			Bits:        uint64(bits),
			Phase:       phase,
			Energy:      phaseToEnergy(phase, opts.Time),
			Probability: p,
		})
	}
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].Probability > outcomes[j].Probability })
	if len(outcomes) == 0 {
		return nil, core.ErrNotConverged
	}
	top := outcomes[0]
	limit := len(outcomes)
	if limit > 8 {
		limit = 8
	}
	return &Result{
		Energy:      top.Energy,
		Phase:       top.Phase,
		Confidence:  top.Probability,
		Resolution:  2 * math.Pi / (opts.Time * float64(int(1)<<uint(a))),
		TopOutcomes: outcomes[:limit],
	}, nil
}

// phaseToEnergy inverts φ = E·t/2π (mod 1), mapping to the principal
// branch E ∈ (−π/t, π/t].
func phaseToEnergy(phase, t float64) float64 {
	if phase > 0.5 {
		phase -= 1
	}
	return 2 * math.Pi * phase / t
}

// HartreeFockPrep returns the determinant-preparation circuit used as the
// standard QPE input state for chemistry problems.
func HartreeFockPrep(sysQubits, electrons int) *circuit.Circuit {
	c := circuit.New(sysQubits)
	for q := 0; q < electrons; q++ {
		c.X(q)
	}
	return c
}

// VQEPrep adapts an optimized ansatz as the QPE input state (the hybrid
// workflow: VQE refines the state, QPE reads the eigenvalue).
func VQEPrep(a ansatz.Ansatz, params []float64) *circuit.Circuit {
	return a.Circuit(params)
}
