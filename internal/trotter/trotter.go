// Package trotter builds product-formula circuits approximating
// Hamiltonian time evolution e^{−iHt} for Pauli-sum Hamiltonians — the
// circuit-level substrate beneath QPE's controlled evolutions and a
// workload for the simulator in its own right (dynamics simulations).
// First-order (Lie) and second-order (Strang/symmetric) formulas are
// provided, with exact dense evolution as the error reference.
package trotter

import (
	"fmt"
	"math"

	"repro/internal/ansatz"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/pauli"
	"repro/internal/state"
)

// Order selects the product formula.
type Order int

const (
	// First is the Lie–Trotter formula: ∏ e^{−i c_k P_k dt} per step.
	First Order = 1
	// Second is the symmetric Strang splitting: forward half-step then
	// backward half-step, with O(dt³) local error.
	Second Order = 2
)

// Options configures circuit construction.
type Options struct {
	Time  float64
	Steps int
	Order Order
}

// Circuit builds the evolution circuit for e^{−iHt} on n qubits. The
// identity component of H contributes only a global phase and is skipped.
func Circuit(h *pauli.Op, n int, opts Options) (*circuit.Circuit, error) {
	if h.MaxQubit() >= n {
		return nil, core.QubitError(h.MaxQubit(), n)
	}
	if opts.Steps < 1 {
		return nil, fmt.Errorf("%w: %d steps", core.ErrInvalidArgument, opts.Steps)
	}
	if !h.IsHermitian(1e-10) {
		return nil, fmt.Errorf("%w: non-Hermitian Hamiltonian", core.ErrInvalidArgument)
	}
	terms := h.Terms()
	c := circuit.New(n)
	dt := opts.Time / float64(opts.Steps)
	switch opts.Order {
	case First:
		for s := 0; s < opts.Steps; s++ {
			for _, t := range terms {
				appendTermExp(c, real(t.Coeff)*dt, t.P)
			}
		}
	case Second:
		for s := 0; s < opts.Steps; s++ {
			for _, t := range terms {
				appendTermExp(c, real(t.Coeff)*dt/2, t.P)
			}
			for i := len(terms) - 1; i >= 0; i-- {
				appendTermExp(c, real(terms[i].Coeff)*dt/2, terms[i].P)
			}
		}
	default:
		return nil, fmt.Errorf("%w: order %d", core.ErrInvalidArgument, opts.Order)
	}
	return c, nil
}

// appendTermExp appends e^{−i·theta·P} (note: full angle, not half).
func appendTermExp(c *circuit.Circuit, theta float64, p pauli.String) {
	if p.IsIdentity() {
		return
	}
	ansatz.AppendPauliExp(c, 2*theta, p)
}

// ExactEvolve applies e^{−iHt} to the state exactly via the dense matrix
// exponential (reference for error measurements; small n only).
func ExactEvolve(h *pauli.Op, s *state.State, t float64) error {
	n := s.NumQubits()
	if h.MaxQubit() >= n {
		return core.QubitError(h.MaxQubit(), n)
	}
	u := linalg.Expm(h.ToDense(n).Scale(complex(0, -t)))
	out := u.MulVec(s.Amplitudes())
	copy(s.Amplitudes(), out)
	return nil
}

// Error runs the Trotter circuit and the exact evolution from the given
// initial state and returns the l2 distance between the final states.
func Error(h *pauli.Op, n int, initial *circuit.Circuit, opts Options) (float64, error) {
	c, err := Circuit(h, n, opts)
	if err != nil {
		return 0, err
	}
	approx := state.New(n, state.Options{})
	exact := state.New(n, state.Options{})
	if initial != nil {
		approx.Run(initial)
		exact.Run(initial)
	}
	approx.Run(c)
	if err := ExactEvolve(h, exact, opts.Time); err != nil {
		return 0, err
	}
	// Distance up to global phase: minimize over phase analytically —
	// d² = 2(1 − |⟨exact|approx⟩|).
	ov := exact.InnerProduct(approx)
	mag := math.Hypot(real(ov), imag(ov))
	if mag > 1 {
		mag = 1
	}
	return math.Sqrt(2 * (1 - mag)), nil
}

// EvolveObservable simulates ⟨O(t)⟩ on a grid of times with the given
// step density, returning one sample per grid point — the dynamics
// workflow (quench experiments).
func EvolveObservable(h, obs *pauli.Op, n int, initial *circuit.Circuit, times []float64, stepsPerUnitTime int, order Order) ([]float64, error) {
	if stepsPerUnitTime < 1 {
		stepsPerUnitTime = 16
	}
	out := make([]float64, len(times))
	for i, t := range times {
		steps := int(math.Ceil(math.Abs(t)*float64(stepsPerUnitTime))) + 1
		c, err := Circuit(h, n, Options{Time: t, Steps: steps, Order: order})
		if err != nil {
			return nil, err
		}
		s := state.New(n, state.Options{})
		if initial != nil {
			s.Run(initial)
		}
		s.Run(c)
		out[i] = pauli.Expectation(s, obs, pauli.ExpectationOptions{})
	}
	return out, nil
}
