package trotter

import (
	"math"
	"testing"

	"repro/internal/chem"
	"repro/internal/circuit"
	"repro/internal/pauli"
	"repro/internal/state"
)

// tfim returns a transverse-field Ising Hamiltonian on n qubits:
// H = −J Σ Z_i Z_{i+1} − g Σ X_i (terms do not commute → real Trotter
// error).
func tfim(n int, j, g float64) *pauli.Op {
	h := pauli.NewOp()
	for i := 0; i+1 < n; i++ {
		zz := pauli.String{Z: 3 << uint(i)}
		h.Add(zz, complex(-j, 0))
	}
	for i := 0; i < n; i++ {
		x := pauli.String{X: 1 << uint(i)}
		h.Add(x, complex(-g, 0))
	}
	return h
}

func TestCommutingHamiltonianIsExact(t *testing.T) {
	// All-Z Hamiltonians commute term-wise: one step is exact.
	h := pauli.NewOp().
		Add(pauli.MustParse("ZII"), 0.5).
		Add(pauli.MustParse("IZI"), -0.3).
		Add(pauli.MustParse("ZZI"), 0.7)
	initial := circuit.New(3).H(0).H(1).H(2)
	for _, order := range []Order{First, Second} {
		d, err := Error(h, 3, initial, Options{Time: 1.3, Steps: 1, Order: order})
		if err != nil {
			t.Fatal(err)
		}
		if d > 1e-9 {
			t.Errorf("order %d: commuting Hamiltonian not exact: %v", order, d)
		}
	}
}

func TestErrorDecreasesWithSteps(t *testing.T) {
	h := tfim(3, 1, 0.7)
	initial := circuit.New(3).H(1)
	prev := math.Inf(1)
	for _, steps := range []int{1, 2, 4, 8, 16} {
		d, err := Error(h, 3, initial, Options{Time: 1.0, Steps: steps, Order: First})
		if err != nil {
			t.Fatal(err)
		}
		if d >= prev {
			t.Errorf("steps=%d: error %v did not decrease from %v", steps, d, prev)
		}
		prev = d
	}
}

func TestFirstOrderScaling(t *testing.T) {
	// Global first-order error ~ t²/steps: doubling steps should roughly
	// halve the error (allow generous slack for prefactors).
	h := tfim(3, 1, 0.9)
	d8, _ := Error(h, 3, nil, Options{Time: 1, Steps: 8, Order: First})
	d16, _ := Error(h, 3, nil, Options{Time: 1, Steps: 16, Order: First})
	ratio := d8 / d16
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("first-order step ratio %v, want ≈2", ratio)
	}
}

func TestSecondOrderScaling(t *testing.T) {
	// Second-order error ~ 1/steps²: doubling steps quarters the error.
	h := tfim(3, 1, 0.9)
	d8, _ := Error(h, 3, nil, Options{Time: 1, Steps: 8, Order: Second})
	d16, _ := Error(h, 3, nil, Options{Time: 1, Steps: 16, Order: Second})
	ratio := d8 / d16
	if ratio < 3.2 || ratio > 4.8 {
		t.Errorf("second-order step ratio %v, want ≈4", ratio)
	}
}

func TestSecondOrderBeatsFirst(t *testing.T) {
	h := tfim(4, 1, 0.6)
	d1, _ := Error(h, 4, nil, Options{Time: 1, Steps: 6, Order: First})
	d2, _ := Error(h, 4, nil, Options{Time: 1, Steps: 6, Order: Second})
	if d2 >= d1 {
		t.Errorf("second order %v not better than first %v", d2, d1)
	}
}

func TestEvolveObservableRabi(t *testing.T) {
	// H = g·X on one qubit: ⟨Z(t)⟩ = cos(2gt) starting from |0⟩.
	g := 0.8
	h := pauli.NewOp().Add(pauli.MustParse("X"), complex(g, 0))
	obs := pauli.NewOp().Add(pauli.MustParse("Z"), 1)
	times := []float64{0, 0.3, 0.7, 1.2}
	vals, err := EvolveObservable(h, obs, 1, nil, times, 64, Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range times {
		want := math.Cos(2 * g * tm)
		if math.Abs(vals[i]-want) > 1e-3 {
			t.Errorf("⟨Z(%v)⟩ = %v, want %v", tm, vals[i], want)
		}
	}
}

func TestH2EvolutionPreservesEnergy(t *testing.T) {
	// Energy is conserved under its own evolution.
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	initial := circuit.New(4).X(0).X(1) // HF determinant
	c, err := Circuit(h, 4, Options{Time: 0.5, Steps: 8, Order: Second})
	if err != nil {
		t.Fatal(err)
	}
	before := energyOf(h, initial, nil)
	after := energyOf(h, initial, c)
	if math.Abs(before-after) > 1e-3 {
		t.Errorf("energy drifted: %v → %v", before, after)
	}
}

func energyOf(h *pauli.Op, prep, evo *circuit.Circuit) float64 {
	s := state.New(prep.NumQubits, state.Options{})
	s.Run(prep)
	if evo != nil {
		s.Run(evo)
	}
	return pauli.Expectation(s, h, pauli.ExpectationOptions{})
}

func TestCircuitValidation(t *testing.T) {
	h := pauli.NewOp().Add(pauli.MustParse("Z"), 1)
	if _, err := Circuit(h, 1, Options{Time: 1, Steps: 0, Order: First}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := Circuit(h, 1, Options{Time: 1, Steps: 1, Order: 3}); err == nil {
		t.Error("order 3 accepted")
	}
	wide := pauli.NewOp().Add(pauli.MustParse("IZ"), 1)
	if _, err := Circuit(wide, 1, Options{Time: 1, Steps: 1, Order: First}); err == nil {
		t.Error("wide Hamiltonian accepted")
	}
	nonH := pauli.NewOp().Add(pauli.MustParse("Z"), 1i)
	if _, err := Circuit(nonH, 1, Options{Time: 1, Steps: 1, Order: First}); err == nil {
		t.Error("non-Hermitian accepted")
	}
}
