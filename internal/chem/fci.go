package chem

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/linalg"
)

// FCIResult holds the exact diagonalization output for one particle-number
// sector.
type FCIResult struct {
	Energy       float64
	Determinants []uint64     // sector basis (occupation bitmasks), sorted
	Ground       []complex128 // ground eigenvector over Determinants
	NumModes     int
}

// enumerateDeterminants lists all occupation bitmasks with ne electrons in
// nModes spin orbitals, in increasing numeric order (Gosper's hack).
func enumerateDeterminants(nModes, ne int) []uint64 {
	if ne < 0 || ne > nModes {
		return nil
	}
	if ne == 0 {
		return []uint64{0}
	}
	var out []uint64
	v := uint64(1)<<uint(ne) - 1
	limit := uint64(1) << uint(nModes)
	for v < limit {
		out = append(out, v)
		t := v | (v - 1)
		v = (t + 1) | (((^t & (t + 1)) - 1) >> uint(bits.TrailingZeros64(v)+1))
	}
	return out
}

// ApplyLadderProduct applies an ordered ladder-operator product to a
// determinant (rightmost operator first), returning the resulting
// determinant and fermionic sign; ok is false if the product annihilates
// the state.
func ApplyLadderProduct(ops []fermion.Ladder, det uint64) (out uint64, sign float64, ok bool) {
	sign = 1
	for i := len(ops) - 1; i >= 0; i-- {
		l := ops[i]
		bit := uint64(1) << uint(l.Mode)
		below := det & (bit - 1)
		if l.Dagger {
			if det&bit != 0 {
				return 0, 0, false
			}
			if bits.OnesCount64(below)%2 == 1 {
				sign = -sign
			}
			det |= bit
		} else {
			if det&bit == 0 {
				return 0, 0, false
			}
			if bits.OnesCount64(below)%2 == 1 {
				sign = -sign
			}
			det &^= bit
		}
	}
	return det, sign, true
}

// SectorMatrix builds the Hamiltonian matrix of a fermionic operator
// restricted to the ne-electron sector of nModes spin orbitals.
func SectorMatrix(h *fermion.Op, nModes, ne int) (*linalg.Sparse, []uint64, error) {
	if h.MaxMode() >= nModes {
		return nil, nil, fmt.Errorf("%w: operator touches mode %d of %d", core.ErrInvalidArgument, h.MaxMode(), nModes)
	}
	dets := enumerateDeterminants(nModes, ne)
	index := make(map[uint64]int, len(dets))
	for i, d := range dets {
		index[d] = i
	}
	b := linalg.NewSparseBuilder(len(dets))
	terms := h.Terms()
	for col, det := range dets {
		for _, t := range terms {
			out, sign, ok := ApplyLadderProduct(t.Ops, det)
			if !ok {
				continue
			}
			row, in := index[out]
			if !in {
				continue // particle-number-violating component: outside sector
			}
			b.Add(row, col, t.Coeff*complex(sign, 0))
		}
	}
	return b.Build(), dets, nil
}

// FCI computes the exact ground state of the molecule's electronic
// Hamiltonian in its particle-number sector via Lanczos on the
// determinant basis. This is the reference energy for every accuracy
// claim in the reproduction (paper Figure 5's ΔE axis).
func FCI(m *MolecularData) (*FCIResult, error) {
	h := FermionicHamiltonian(m)
	nModes := m.NumSpinOrbitals()
	sp, dets, err := SectorMatrix(h, nModes, m.NumElectrons)
	if err != nil {
		return nil, err
	}
	e, vec, err := lanczosOrDense(sp)
	if err != nil {
		return nil, err
	}
	return &FCIResult{Energy: e, Determinants: dets, Ground: vec, NumModes: nModes}, nil
}

// FCIofOp is FCI for an arbitrary fermionic operator and sector.
func FCIofOp(h *fermion.Op, nModes, ne int) (*FCIResult, error) {
	sp, dets, err := SectorMatrix(h, nModes, ne)
	if err != nil {
		return nil, err
	}
	e, vec, err := lanczosOrDense(sp)
	if err != nil {
		return nil, err
	}
	return &FCIResult{Energy: e, Determinants: dets, Ground: vec, NumModes: nModes}, nil
}

// lanczosOrDense picks the solver by size: Jacobi for tiny sectors (more
// robust to degeneracy), Lanczos beyond.
func lanczosOrDense(sp *linalg.Sparse) (float64, []complex128, error) {
	if sp.N <= 64 {
		return linalg.GroundState(sp.Dense())
	}
	return linalg.LanczosGround(sp, linalg.LanczosOptions{MaxIter: 300, Tol: 1e-12})
}

// FullVector scatters the sector eigenvector into the full 2ⁿ qubit space
// (JW mapping: determinant bitmask = basis index), for fidelity
// comparisons against simulated states.
func (r *FCIResult) FullVector() []complex128 {
	out := make([]complex128, core.Dim(r.NumModes))
	for i, d := range r.Determinants {
		out[d] = r.Ground[i]
	}
	return out
}

// SectorDimension returns C(nModes, ne), the FCI basis size.
func SectorDimension(nModes, ne int) int {
	return len(enumerateDeterminants(nModes, ne))
}
