package chem

import (
	"math"
	"testing"
)

func TestRHFOnMOBasisIsFixedPoint(t *testing.T) {
	// H2 integrals are already in the RHF MO basis; SCF must reproduce the
	// closed-form HF energy and leave the aufbau energy unchanged.
	m := H2()
	res, err := RHF(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-HartreeFockEnergy(m)) > 1e-8 {
		t.Errorf("SCF energy %v vs closed form %v", res.Energy, HartreeFockEnergy(m))
	}
	if math.Abs(HartreeFockEnergy(res.Molecule)-HartreeFockEnergy(m)) > 1e-8 {
		t.Errorf("MO-basis aufbau energy changed: %v vs %v",
			HartreeFockEnergy(res.Molecule), HartreeFockEnergy(m))
	}
}

func TestRHFHubbardDimer(t *testing.T) {
	// Half-filled Hubbard dimer: RHF energy = −2t + U/2 (bonding orbital
	// doubly occupied).
	tHop, u := 1.0, 2.0
	m := Hubbard(2, tHop, u, 2)
	res, err := RHF(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := -2*tHop + u/2
	if math.Abs(res.Energy-want) > 1e-8 {
		t.Errorf("RHF %v, want %v", res.Energy, want)
	}
	// In the MO basis the aufbau determinant realizes that energy.
	if math.Abs(HartreeFockEnergy(res.Molecule)-want) > 1e-8 {
		t.Errorf("MO-basis aufbau %v, want %v", HartreeFockEnergy(res.Molecule), want)
	}
	// Site-basis aufbau (both electrons on site 0) is strictly worse.
	if HartreeFockEnergy(m) <= want+1e-9 {
		t.Errorf("site-basis aufbau %v should be above RHF %v", HartreeFockEnergy(m), want)
	}
}

func TestRHFPreservesFCI(t *testing.T) {
	// The SCF basis change is unitary: FCI energies agree before/after.
	m := Hubbard(3, 1, 3, 2)
	res, err := RHF(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	before, err := FCI(m)
	if err != nil {
		t.Fatal(err)
	}
	after, err := FCI(res.Molecule)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before.Energy-after.Energy) > 1e-8 {
		t.Errorf("FCI changed under basis rotation: %v vs %v", before.Energy, after.Energy)
	}
	if err := res.Molecule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRHFLowersAufbauEnergy(t *testing.T) {
	// For a site-basis model, the MO-basis aufbau determinant is at least
	// as good as the site-basis one (variational SCF).
	for _, m := range []*MolecularData{
		Hubbard(2, 1, 4, 2),
		Hubbard(4, 1, 2, 4),
	} {
		res, err := RHF(m, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if HartreeFockEnergy(res.Molecule) > HartreeFockEnergy(m)+1e-9 {
			t.Errorf("%s: SCF raised the aufbau energy %v → %v",
				m.Name, HartreeFockEnergy(m), HartreeFockEnergy(res.Molecule))
		}
	}
}

func TestRHFOrbitalEnergiesSorted(t *testing.T) {
	res, err := RHF(Hubbard(4, 1, 2, 4), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.OrbitalEnergies); i++ {
		if res.OrbitalEnergies[i] < res.OrbitalEnergies[i-1]-1e-12 {
			t.Error("orbital energies not ascending")
		}
	}
}

func TestRHFRejectsOddElectrons(t *testing.T) {
	if _, err := RHF(Hubbard(2, 1, 2, 3), 0, 0); err == nil {
		t.Error("odd electron count accepted")
	}
}
