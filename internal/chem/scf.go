package chem

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/linalg"
)

// This file implements restricted Hartree–Fock self-consistent field
// iteration for MolecularData in an orthonormal basis, and the O(N⁵)
// integral transformation into the resulting molecular-orbital basis.
// Models given in a site/atomic basis (e.g. Hubbard chains) must pass
// through RHF before aufbau-reference methods (UCCSD, MP2, downfolding)
// make sense; models already in an MO basis are fixed points of the
// iteration.

// SCFResult carries the converged mean field.
type SCFResult struct {
	// Molecule holds the integrals transformed into the MO basis.
	Molecule *MolecularData
	// Energy is the converged RHF energy.
	Energy float64
	// OrbitalEnergies are the Fock eigenvalues (spatial orbitals).
	OrbitalEnergies []float64
	// Coefficients[p][i]: weight of basis function i in MO p.
	Coefficients [][]float64
	// Iterations used.
	Iterations int
}

// RHF runs closed-shell SCF (electron count must be even) and returns the
// molecule re-expressed in its molecular-orbital basis.
func RHF(m *MolecularData, maxIter int, tol float64) (*SCFResult, error) {
	if m.NumElectrons%2 != 0 {
		return nil, fmt.Errorf("%w: RHF needs an even electron count, got %d", core.ErrInvalidArgument, m.NumElectrons)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	if tol <= 0 {
		tol = 1e-10
	}
	n := m.NumOrbitals
	nocc := m.NumElectrons / 2

	// Core-Hamiltonian guess, then damped density iteration (50% mixing)
	// to suppress the charge-sloshing oscillations small symmetric systems
	// are prone to.
	c, eps, err := diagonalizeSym(m.OneBody)
	if err != nil {
		return nil, err
	}
	d := density(c, n, nocc)
	const mix = 0.5
	var energyPrev float64
	iters := 0
	for iter := 1; iter <= maxIter; iter++ {
		iters = iter
		f := fock(m, d)
		e := m.NuclearRepulsion + electronicEnergy(m, d, f)
		c, eps, err = diagonalizeSym(f)
		if err != nil {
			return nil, err
		}
		dNew := density(c, n, nocc)
		delta := 0.0
		for p := range d {
			for q := range d[p] {
				delta += math.Abs(dNew[p][q] - d[p][q])
				d[p][q] = mix*dNew[p][q] + (1-mix)*d[p][q]
			}
		}
		if iter > 1 && math.Abs(e-energyPrev) < tol && delta < math.Sqrt(tol) {
			energyPrev = e
			break
		}
		energyPrev = e
	}
	// Final clean diagonalization from the converged density.
	c, eps, err = diagonalizeSym(fock(m, d))
	if err != nil {
		return nil, err
	}
	dFinal := density(c, n, nocc)
	energyPrev = m.NuclearRepulsion + electronicEnergy(m, dFinal, fock(m, dFinal))

	mo := transformIntegrals(m, c)
	return &SCFResult{
		Molecule:        mo,
		Energy:          energyPrev,
		OrbitalEnergies: eps,
		Coefficients:    c,
		Iterations:      iters,
	}, nil
}

// density returns D_rs = 2 Σ_{i<nocc} C_ir C_is with MO index first in c
// as c[mo][basis].
func density(c [][]float64, n, nocc int) [][]float64 {
	d := make([][]float64, n)
	for r := range d {
		d[r] = make([]float64, n)
		for s := 0; s < n; s++ {
			for i := 0; i < nocc; i++ {
				d[r][s] += 2 * c[i][r] * c[i][s]
			}
		}
	}
	return d
}

// fock builds F_pq = h_pq + Σ_rs D_rs [(pq|sr) − ½(pr|sq)].
func fock(m *MolecularData, d [][]float64) [][]float64 {
	n := m.NumOrbitals
	f := make([][]float64, n)
	for p := range f {
		f[p] = make([]float64, n)
		for q := 0; q < n; q++ {
			v := m.OneBody[p][q]
			for r := 0; r < n; r++ {
				for s := 0; s < n; s++ {
					v += d[r][s] * (m.TwoBody[p][q][s][r] - 0.5*m.TwoBody[p][r][s][q])
				}
			}
			f[p][q] = v
		}
	}
	return f
}

// electronicEnergy returns ½ Σ D_pq (h_pq + F_pq).
func electronicEnergy(m *MolecularData, d, f [][]float64) float64 {
	e := 0.0
	for p := range d {
		for q := range d[p] {
			e += 0.5 * d[p][q] * (m.OneBody[p][q] + f[p][q])
		}
	}
	return e
}

// diagonalizeSym diagonalizes a real symmetric matrix, returning
// MO coefficients (rows = MOs, ascending eigenvalue) and eigenvalues.
func diagonalizeSym(f [][]float64) ([][]float64, []float64, error) {
	n := len(f)
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, complex(0.5*(f[i][j]+f[j][i]), 0))
		}
	}
	res, err := linalg.EighJacobi(m)
	if err != nil {
		return nil, nil, err
	}
	c := make([][]float64, n)
	for mo := 0; mo < n; mo++ {
		c[mo] = make([]float64, n)
		for b := 0; b < n; b++ {
			c[mo][b] = real(res.Vectors.At(b, mo))
		}
	}
	return c, res.Values, nil
}

// transformIntegrals produces the MO-basis MolecularData:
// h'_pq = Σ C_pi C_qj h_ij; (pq|rs)' via four quarter-transformations.
func transformIntegrals(m *MolecularData, c [][]float64) *MolecularData {
	n := m.NumOrbitals
	out := &MolecularData{
		Name:             m.Name + " [RHF MO basis]",
		NumOrbitals:      n,
		NumElectrons:     m.NumElectrons,
		NuclearRepulsion: m.NuclearRepulsion,
		OneBody:          allocOneBody(n),
		TwoBody:          allocTwoBody(n),
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			v := 0.0
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					v += c[p][i] * c[q][j] * m.OneBody[i][j]
				}
			}
			if math.Abs(v) < 1e-12 {
				v = 0
			}
			out.OneBody[p][q] = v
		}
	}
	// Quarter transforms: g0 = AO integrals → g4 = MO integrals.
	g := m.TwoBody
	t1 := allocTwoBody(n)
	for p := 0; p < n; p++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				for l := 0; l < n; l++ {
					v := 0.0
					for i := 0; i < n; i++ {
						v += c[p][i] * g[i][j][k][l]
					}
					t1[p][j][k][l] = v
				}
			}
		}
	}
	t2 := allocTwoBody(n)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			for k := 0; k < n; k++ {
				for l := 0; l < n; l++ {
					v := 0.0
					for j := 0; j < n; j++ {
						v += c[q][j] * t1[p][j][k][l]
					}
					t2[p][q][k][l] = v
				}
			}
		}
	}
	t3 := allocTwoBody(n)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			for r := 0; r < n; r++ {
				for l := 0; l < n; l++ {
					v := 0.0
					for k := 0; k < n; k++ {
						v += c[r][k] * t2[p][q][k][l]
					}
					t3[p][q][r][l] = v
				}
			}
		}
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			for r := 0; r < n; r++ {
				for s := 0; s < n; s++ {
					v := 0.0
					for l := 0; l < n; l++ {
						v += c[s][l] * t3[p][q][r][l]
					}
					if math.Abs(v) < 1e-12 {
						v = 0
					}
					out.TwoBody[p][q][r][s] = v
				}
			}
		}
	}
	return out
}
