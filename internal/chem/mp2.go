package chem

import "math"

// MP2Energy returns the second-order Møller–Plesset estimate
//
//	E_MP2 = E_HF + ¼ Σ_{ijab} |⟨ij||ab⟩|² / (ε_i + ε_j − ε_a − ε_b)
//
// over occupied spin orbitals i,j and virtuals a,b — the classical
// perturbative reference sitting between Hartree–Fock and FCI, and the
// source of the downfolding amplitudes (σ) used in Downfold.
func MP2Energy(m *MolecularData) float64 {
	nso := m.NumSpinOrbitals()
	ne := m.NumElectrons
	eps := orbitalEnergies(m)
	corr := 0.0
	for i := 0; i < ne; i++ {
		for j := 0; j < ne; j++ {
			for a := ne; a < nso; a++ {
				for b := ne; b < nso; b++ {
					v := antisym(m, i, j, a, b)
					if v == 0 {
						continue
					}
					denom := eps[i] + eps[j] - eps[a] - eps[b]
					if math.Abs(denom) < 1e-10 {
						continue
					}
					corr += 0.25 * v * v / denom
				}
			}
		}
	}
	return HartreeFockEnergy(m) + corr
}
