package chem

import (
	"math"

	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/pauli"
)

// Spin-orbital convention: spatial orbital p yields modes 2p (α) and
// 2p+1 (β); mode index = JW qubit index.

// SpinOrbital returns the mode index of spatial orbital p with spin σ
// (0 = α, 1 = β).
func SpinOrbital(p, sigma int) int { return 2*p + sigma }

// FermionicHamiltonian builds the second-quantized electronic Hamiltonian
//
//	H = E_nuc + Σ_{pqσ} h_pq a†_{pσ} a_{qσ}
//	    + ½ Σ_{pqrs,στ} (pq|rs) a†_{pσ} a†_{rτ} a_{sτ} a_{qσ}
//
// from chemist-notation spatial integrals.
func FermionicHamiltonian(m *MolecularData) *fermion.Op {
	n := m.NumOrbitals
	h := fermion.Scalar(complex(m.NuclearRepulsion, 0))
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			v := m.OneBody[p][q]
			if math.Abs(v) < core.CoeffEps {
				continue
			}
			for sigma := 0; sigma < 2; sigma++ {
				h.Add(fermion.OneBody(SpinOrbital(p, sigma), SpinOrbital(q, sigma)), complex(v, 0))
			}
		}
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			for r := 0; r < n; r++ {
				for s := 0; s < n; s++ {
					v := m.TwoBody[p][q][r][s]
					if math.Abs(v) < core.CoeffEps {
						continue
					}
					for sigma := 0; sigma < 2; sigma++ {
						for tau := 0; tau < 2; tau++ {
							i := SpinOrbital(p, sigma)
							j := SpinOrbital(r, tau)
							k := SpinOrbital(s, tau)
							l := SpinOrbital(q, sigma)
							if i == j || k == l {
								continue // a†a† or aa on same mode vanishes
							}
							h.AddTerm(fermion.Term{
								Coeff: complex(0.5*v, 0),
								Ops: []fermion.Ladder{
									{Mode: i, Dagger: true},
									{Mode: j, Dagger: true},
									{Mode: k, Dagger: false},
									{Mode: l, Dagger: false},
								},
							})
						}
					}
				}
			}
		}
	}
	return h
}

// QubitHamiltonian builds the Jordan–Wigner qubit observable of a
// molecule. The result acts on NumSpinOrbitals qubits and is Hermitian.
func QubitHamiltonian(m *MolecularData) *pauli.Op {
	return FermionicHamiltonian(m).JordanWigner().HermitianPart()
}

// HartreeFockEnergy returns the restricted HF energy of the aufbau
// determinant (lowest NumElectrons spin orbitals occupied):
//
//	E = E_nuc + Σ_i h_ii + ½ Σ_{ij} (⟨ij|ij⟩ − ⟨ij|ji⟩)
//
// with i, j running over occupied spin orbitals.
func HartreeFockEnergy(m *MolecularData) float64 {
	occ := aufbauOccupation(m.NumElectrons)
	e := m.NuclearRepulsion
	for _, i := range occ {
		e += m.OneBody[i/2][i/2]
	}
	for _, i := range occ {
		for _, j := range occ {
			e += 0.5 * (coulomb(m, i, j) - exchange(m, i, j))
		}
	}
	return e
}

// aufbauOccupation lists the first ne spin orbitals.
func aufbauOccupation(ne int) []int {
	occ := make([]int, ne)
	for i := range occ {
		occ[i] = i
	}
	return occ
}

// coulomb returns ⟨ij|ij⟩ = (pp'|qq') for spin orbitals i=(p,σ), j=(q,τ).
func coulomb(m *MolecularData, i, j int) float64 {
	return m.TwoBody[i/2][i/2][j/2][j/2]
}

// exchange returns ⟨ij|ji⟩, nonzero only for parallel spins.
func exchange(m *MolecularData, i, j int) float64 {
	if i%2 != j%2 {
		return 0
	}
	return m.TwoBody[i/2][j/2][j/2][i/2]
}

// HartreeFockDeterminant returns the occupation bitmask of the aufbau
// determinant (bit q set ⇔ spin orbital q occupied).
func HartreeFockDeterminant(m *MolecularData) uint64 {
	var d uint64
	for i := 0; i < m.NumElectrons; i++ {
		d |= 1 << uint(i)
	}
	return d
}

// TaperedHamiltonian builds the qubit Hamiltonian and removes every
// Z₂-symmetry qubit, selecting the symmetry sector of the Hartree–Fock
// determinant (the ground sector for closed-shell systems). H2 reduces
// from 4 qubits to 1 this way.
func TaperedHamiltonian(m *MolecularData) (*pauli.TaperResult, error) {
	h := QubitHamiltonian(m)
	n := m.NumSpinOrbitals()
	syms := pauli.FindZSymmetries(h, n)
	if len(syms) == 0 {
		return &pauli.TaperResult{Tapered: h, NumQubits: n}, nil
	}
	canon, _, err := pauli.CanonicalZGenerators(syms)
	if err != nil {
		return nil, err
	}
	sector := pauli.SectorFromDeterminant(canon, HartreeFockDeterminant(m))
	return pauli.Taper(h, n, canon, sector)
}
