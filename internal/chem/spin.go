package chem

import (
	"repro/internal/fermion"
	"repro/internal/pauli"
)

// Symmetry operators used to verify that ansätze and optimized states
// stay in the right particle-number and spin sectors — the invariants the
// spin-conserving excitation enumeration (ansatz package) is supposed to
// protect.

// NumberOperator returns N = Σ_p a†_p a_p on n spin orbitals as a qubit
// observable.
func NumberOperator(n int) *pauli.Op {
	op := fermion.NewOp()
	for p := 0; p < n; p++ {
		op.Add(fermion.Number(p), 1)
	}
	return op.JordanWigner().HermitianPart()
}

// SzOperator returns S_z = ½ Σ_p (n_{pα} − n_{pβ}) over nOrb spatial
// orbitals (interleaved spin convention).
func SzOperator(nOrb int) *pauli.Op {
	op := fermion.NewOp()
	for p := 0; p < nOrb; p++ {
		op.Add(fermion.Number(SpinOrbital(p, 0)), 0.5)
		op.Add(fermion.Number(SpinOrbital(p, 1)), -0.5)
	}
	return op.JordanWigner().HermitianPart()
}

// splus returns S₊ = Σ_p a†_{pα} a_{pβ}.
func splus(nOrb int) *fermion.Op {
	op := fermion.NewOp()
	for p := 0; p < nOrb; p++ {
		op.Add(fermion.OneBody(SpinOrbital(p, 0), SpinOrbital(p, 1)), 1)
	}
	return op
}

// S2Operator returns the total-spin operator S² = S₋S₊ + S_z(S_z + 1) on
// nOrb spatial orbitals. Singlets are its zero-eigenvalue states.
func S2Operator(nOrb int) *pauli.Op {
	sp := splus(nOrb)
	sm := sp.Adjoint()
	sz := fermion.NewOp()
	for p := 0; p < nOrb; p++ {
		sz.Add(fermion.Number(SpinOrbital(p, 0)), 0.5)
		sz.Add(fermion.Number(SpinOrbital(p, 1)), -0.5)
	}
	s2 := sm.Mul(sp)
	s2.Add(sz.Mul(sz), 1)
	s2.Add(sz, 1)
	return s2.JordanWigner().HermitianPart()
}
