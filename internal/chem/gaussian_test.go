package chem

import (
	"math"
	"testing"
)

func TestBoysF0(t *testing.T) {
	if math.Abs(boysF0(0)-1) > 1e-12 {
		t.Error("F0(0) != 1")
	}
	// F0(1) = ½√π·erf(1) ≈ 0.746824.
	if math.Abs(boysF0(1)-0.7468241328) > 1e-9 {
		t.Errorf("F0(1) = %v", boysF0(1))
	}
	// Continuity across the series/closed-form switch.
	if math.Abs(boysF0(1e-13)-boysF0(2e-12)) > 1e-9 {
		t.Error("F0 discontinuous near 0")
	}
	// Monotone decreasing.
	if boysF0(0.5) <= boysF0(1.5) {
		t.Error("F0 not decreasing")
	}
}

func TestPrimitiveOverlapSelf(t *testing.T) {
	// A normalized primitive overlaps itself with 1.
	for _, a := range []float64{0.3, 1.0, 3.5} {
		if s := primOverlap(a, a, 0); math.Abs(s-1) > 1e-12 {
			t.Errorf("self overlap %v at α=%v", s, a)
		}
	}
}

func TestContractedAONormalization(t *testing.T) {
	// The contracted STO-3G 1s function is normalized to ~1.
	s := contracted2(func(a, b float64) float64 { return primOverlap(a, b, 0) })
	if math.Abs(s-1) > 1e-4 {
		t.Errorf("⟨χ|χ⟩ = %v", s)
	}
}

func TestAOIntegralsAtEquilibrium(t *testing.T) {
	// Szabo–Ostlund reference values for H2/STO-3G at R = 1.4 a₀:
	// S12 ≈ 0.6593, T11 ≈ 0.7600, V11(total) makes h11 ≈ −1.1204,
	// (11|11) ≈ 0.7746, (11|22) ≈ 0.5697, (12|12) ≈ 0.2970.
	ao := h2AOIntegrals(1.4)
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"S12", ao.s12, 0.6593, 2e-3},
		{"h11", ao.hcore[0][0], -1.1204, 5e-3},
		{"h12", ao.hcore[0][1], -0.9584, 5e-3},
		{"(11|11)", ao.eri[0][0][0][0], 0.7746, 2e-3},
		{"(11|22)", ao.eri[0][0][1][1], 0.5697, 2e-3},
		{"(12|12)", ao.eri[0][1][0][1], 0.2970, 2e-3},
		{"(11|12)", ao.eri[0][0][0][1], 0.4441, 2e-3},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %.4f, want %.4f", c.name, c.got, c.want)
		}
	}
}

func TestH2AtEquilibriumMatchesHardcoded(t *testing.T) {
	// The computed-integral molecule at R = 0.7414 Å must reproduce the
	// hardcoded literature model used elsewhere in the suite.
	got, err := H2AtDistance(0.7414)
	if err != nil {
		t.Fatal(err)
	}
	want := H2()
	if math.Abs(got.NuclearRepulsion-want.NuclearRepulsion) > 1e-4 {
		t.Errorf("E_nuc %v vs %v", got.NuclearRepulsion, want.NuclearRepulsion)
	}
	if math.Abs(got.OneBody[0][0]-want.OneBody[0][0]) > 2e-3 {
		t.Errorf("h00 %v vs %v", got.OneBody[0][0], want.OneBody[0][0])
	}
	if math.Abs(got.OneBody[1][1]-want.OneBody[1][1]) > 2e-3 {
		t.Errorf("h11 %v vs %v", got.OneBody[1][1], want.OneBody[1][1])
	}
	if math.Abs(got.TwoBody[0][0][0][0]-want.TwoBody[0][0][0][0]) > 2e-3 {
		t.Errorf("(00|00) %v vs %v", got.TwoBody[0][0][0][0], want.TwoBody[0][0][0][0])
	}
	// Energies.
	gotFCI, err := FCI(got)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotFCI.Energy-(-1.13727)) > 1e-3 {
		t.Errorf("FCI at equilibrium: %v", gotFCI.Energy)
	}
	if math.Abs(HartreeFockEnergy(got)-(-1.11668)) > 1e-3 {
		t.Errorf("HF at equilibrium: %v", HartreeFockEnergy(got))
	}
}

func TestH2IntegralsValidate(t *testing.T) {
	for _, r := range []float64{0.5, 0.7414, 1.2, 2.5} {
		m, err := H2AtDistance(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("R=%v: %v", r, err)
		}
		// Off-diagonal one-body elements vanish by g/u symmetry.
		if math.Abs(m.OneBody[0][1]) > 1e-10 {
			t.Errorf("R=%v: symmetry-forbidden h01 = %v", r, m.OneBody[0][1])
		}
	}
}

func TestH2DissociationCurveShape(t *testing.T) {
	pts, err := H2DissociationCurve([]float64{0.4, 0.55, 0.7414, 1.0, 1.5, 2.5, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	// FCI ≤ HF everywhere.
	for _, p := range pts {
		if p.EFCI > p.EHF+1e-10 {
			t.Errorf("R=%v: FCI above HF", p.R)
		}
	}
	// Minimum near equilibrium (0.7414) — energy at equilibrium below both
	// compressed and stretched neighbours.
	eq := pts[2]
	if !(eq.EFCI < pts[0].EFCI && eq.EFCI < pts[4].EFCI) {
		t.Errorf("no minimum near equilibrium: %+v", pts)
	}
	// Dissociation limit: FCI → 2·E(H) = −0.93316 Ha in this basis
	// (2 × −0.46658), while RHF dissociates incorrectly (higher).
	far := pts[len(pts)-1]
	if math.Abs(far.EFCI-(-0.9333)) > 5e-3 {
		t.Errorf("FCI dissociation limit %v, want ≈ -0.9333", far.EFCI)
	}
	if far.EHF < far.EFCI+0.1 {
		t.Errorf("RHF should dissociate poorly: HF %v vs FCI %v", far.EHF, far.EFCI)
	}
	// Static correlation grows with stretch: |E_FCI − E_HF| increases.
	if (pts[5].EHF - pts[5].EFCI) < (pts[2].EHF - pts[2].EFCI) {
		t.Error("correlation energy did not grow with bond stretch")
	}
}

func TestH2AtDistanceRejectsNonPositive(t *testing.T) {
	if _, err := H2AtDistance(0); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := H2AtDistance(-1); err == nil {
		t.Error("R<0 accepted")
	}
}
