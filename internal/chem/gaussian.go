package chem

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// This file implements analytic molecular integrals over s-type contracted
// Gaussians (STO-3G) for the hydrogen molecule, so H2 is available at any
// bond distance — which is what enables potential-energy-surface
// experiments (the application driving the paper's downfolding section).
// All formulas are the textbook closed forms (Szabo & Ostlund, appendix A):
//
//	overlap    S  = (π/p)^{3/2} · e^{−μR²}
//	kinetic    T  = μ(3 − 2μR²)(π/p)^{3/2} · e^{−μR²}
//	nuclear    V  = −(2π/p)·Z · e^{−μR²} · F₀(p·R_PC²)
//	(ab|cd)       = 2π^{5/2}/(pq√(p+q)) · e^{−μ_ab R_AB²} e^{−μ_cd R_CD²} · F₀(x)
//
// with p = a+b, μ = ab/p and the Boys function F₀.

// sto3gHydrogen holds the STO-3G 1s expansion for hydrogen (ζ = 1.24).
var sto3gHydrogen = struct {
	exps, coefs [3]float64
}{
	exps:  [3]float64{3.425250914, 0.6239137298, 0.1688554040},
	coefs: [3]float64{0.1543289673, 0.5353281423, 0.4446345422},
}

// boysF0 evaluates F₀(x) = ½√(π/x)·erf(√x), continuous at x → 0.
func boysF0(x float64) float64 {
	if x < 1e-12 {
		return 1 - x/3 // series: F₀(x) = 1 − x/3 + x²/10 − …
	}
	return 0.5 * math.Sqrt(math.Pi/x) * math.Erf(math.Sqrt(x))
}

// gaussNorm is the normalization of a primitive s Gaussian.
func gaussNorm(alpha float64) float64 {
	return math.Pow(2*alpha/math.Pi, 0.75)
}

// primOverlap returns ⟨a,A|b,B⟩ for normalized primitives at distance r.
func primOverlap(a, b, r float64) float64 {
	p := a + b
	mu := a * b / p
	return gaussNorm(a) * gaussNorm(b) * math.Pow(math.Pi/p, 1.5) * math.Exp(-mu*r*r)
}

// primKinetic returns ⟨a,A|−∇²/2|b,B⟩.
func primKinetic(a, b, r float64) float64 {
	p := a + b
	mu := a * b / p
	return gaussNorm(a) * gaussNorm(b) * mu * (3 - 2*mu*r*r) *
		math.Pow(math.Pi/p, 1.5) * math.Exp(-mu*r*r)
}

// primNuclear returns ⟨a,A|−Z/|r−C||b,B⟩ for 1D-collinear geometry:
// centers at coordinates xa, xb, nucleus at xc (all on the z-axis).
func primNuclear(a, xa, b, xb, xc, z float64) float64 {
	p := a + b
	rab := xa - xb
	mu := a * b / p
	xp := (a*xa + b*xb) / p
	rpc := xp - xc
	return -gaussNorm(a) * gaussNorm(b) * (2 * math.Pi / p) * z *
		math.Exp(-mu*rab*rab) * boysF0(p*rpc*rpc)
}

// primERI returns the two-electron integral (ab|cd) in chemist notation
// for collinear s primitives at coordinates xa…xd.
func primERI(a, xa, b, xb, c, xc, d, xd float64) float64 {
	p := a + b
	q := c + d
	rab := xa - xb
	rcd := xc - xd
	xp := (a*xa + b*xb) / p
	xq := (c*xc + d*xd) / q
	rpq := xp - xq
	pref := 2 * math.Pow(math.Pi, 2.5) / (p * q * math.Sqrt(p+q))
	return gaussNorm(a) * gaussNorm(b) * gaussNorm(c) * gaussNorm(d) *
		pref * math.Exp(-a*b/p*rab*rab) * math.Exp(-c*d/q*rcd*rcd) *
		boysF0(p*q/(p+q)*rpq*rpq)
}

// contracted2 sums a two-index primitive kernel over the STO-3G
// contraction.
func contracted2(kernel func(a, b float64) float64) float64 {
	g := sto3gHydrogen
	total := 0.0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			total += g.coefs[i] * g.coefs[j] * kernel(g.exps[i], g.exps[j])
		}
	}
	return total
}

// h2AO holds the AO-basis integrals of H2 at bond distance r (bohr):
// functions χ₁ (at 0) and χ₂ (at r).
type h2AO struct {
	s12   float64 // overlap ⟨χ₁|χ₂⟩
	hcore [2][2]float64
	eri   [2][2][2][2]float64
	enuc  float64
}

// h2AOIntegrals evaluates all AO integrals at distance r (bohr).
func h2AOIntegrals(r float64) h2AO {
	g := sto3gHydrogen
	pos := [2]float64{0, r}
	var out h2AO
	out.enuc = 1 / r

	dist := func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) }

	// Overlap and core Hamiltonian.
	var s [2][2]float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			s[i][j] = contracted2(func(a, b float64) float64 {
				return primOverlap(a, b, dist(i, j))
			})
			t := contracted2(func(a, b float64) float64 {
				return primKinetic(a, b, dist(i, j))
			})
			v := 0.0
			for nuc := 0; nuc < 2; nuc++ {
				i, j, nuc := i, j, nuc
				v += contracted2(func(a, b float64) float64 {
					return primNuclear(a, pos[i], b, pos[j], pos[nuc], 1)
				})
			}
			out.hcore[i][j] = t + v
		}
	}
	out.s12 = s[0][1]

	// Two-electron integrals (ij|kl) over the 2 AOs.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				for l := 0; l < 2; l++ {
					i, j, k, l := i, j, k, l
					g3 := 0.0
					for p := 0; p < 3; p++ {
						for q := 0; q < 3; q++ {
							for t := 0; t < 3; t++ {
								for u := 0; u < 3; u++ {
									g3 += g.coefs[p] * g.coefs[q] * g.coefs[t] * g.coefs[u] *
										primERI(g.exps[p], pos[i], g.exps[q], pos[j],
											g.exps[t], pos[k], g.exps[u], pos[l])
								}
							}
						}
					}
					out.eri[i][j][k][l] = g3
				}
			}
		}
	}
	return out
}

// AngstromToBohr converts lengths (1 Å = 1.8897259886 a₀).
const AngstromToBohr = 1.8897259886

// H2AtDistance builds the H2/STO-3G molecule at bond distance r in
// Ångström, with integrals in the symmetry-adapted molecular-orbital basis
// σ_g = (χ₁+χ₂)/√(2(1+S)) and σ_u = (χ₁−χ₂)/√(2(1−S)). For a homonuclear
// diatomic these are the exact RHF orbitals, so no SCF iteration is
// needed.
func H2AtDistance(rAngstrom float64) (*MolecularData, error) {
	if rAngstrom <= 0 {
		return nil, fmt.Errorf("%w: bond distance %v", core.ErrInvalidArgument, rAngstrom)
	}
	r := rAngstrom * AngstromToBohr
	ao := h2AOIntegrals(r)

	// MO coefficients over (χ₁, χ₂).
	ng := 1 / math.Sqrt(2*(1+ao.s12))
	nu := 1 / math.Sqrt(2*(1-ao.s12))
	c := [2][2]float64{
		{ng, ng},  // σ_g
		{nu, -nu}, // σ_u
	}

	m := &MolecularData{
		Name:             fmt.Sprintf("H2/STO-3G (R=%.4fÅ)", rAngstrom),
		NumOrbitals:      2,
		NumElectrons:     2,
		NuclearRepulsion: ao.enuc,
		OneBody:          allocOneBody(2),
		TwoBody:          allocTwoBody(2),
	}
	for p := 0; p < 2; p++ {
		for q := 0; q < 2; q++ {
			h := 0.0
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					h += c[p][i] * c[q][j] * ao.hcore[i][j]
				}
			}
			if math.Abs(h) < 1e-12 {
				h = 0
			}
			m.OneBody[p][q] = h
		}
	}
	for p := 0; p < 2; p++ {
		for q := 0; q < 2; q++ {
			for rr := 0; rr < 2; rr++ {
				for ss := 0; ss < 2; ss++ {
					v := 0.0
					for i := 0; i < 2; i++ {
						for j := 0; j < 2; j++ {
							for k := 0; k < 2; k++ {
								for l := 0; l < 2; l++ {
									v += c[p][i] * c[q][j] * c[rr][k] * c[ss][l] * ao.eri[i][j][k][l]
								}
							}
						}
					}
					if math.Abs(v) < 1e-12 {
						v = 0
					}
					m.TwoBody[p][q][rr][ss] = v
				}
			}
		}
	}
	return m, nil
}

// H2DissociationCurve computes FCI and HF energies over a range of bond
// distances (Ångström), the potential-energy-surface workload of the
// downfolding literature.
type CurvePoint struct {
	R    float64 // Å
	EHF  float64
	EFCI float64
}

// H2DissociationCurve evaluates the curve at the given distances.
func H2DissociationCurve(distances []float64) ([]CurvePoint, error) {
	out := make([]CurvePoint, 0, len(distances))
	for _, r := range distances {
		m, err := H2AtDistance(r)
		if err != nil {
			return nil, err
		}
		fci, err := FCI(m)
		if err != nil {
			return nil, err
		}
		out = append(out, CurvePoint{R: r, EHF: HartreeFockEnergy(m), EFCI: fci.Energy})
	}
	return out, nil
}
