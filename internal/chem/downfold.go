package chem

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/pauli"
)

// DownfoldOptions configures Hermitian coupled-cluster downfolding
// (paper §2, Eq. 2): H_eff = P(H + [H,σ] + ½[[H,σ],σ] + …)P with the
// anti-Hermitian external cluster operator σ built from perturbative
// amplitudes.
type DownfoldOptions struct {
	// ActiveOrbitals is the number of spatial orbitals kept (the lowest
	// ones); all electrons must fit inside the active space.
	ActiveOrbitals int
	// Order is the highest commutator retained: 0 = bare projection,
	// 1 = single commutator, 2 = double commutator (paper's choice).
	Order int
	// AmplitudeCut drops σ amplitudes below this magnitude (default 1e-8).
	AmplitudeCut float64
	// TermCut chops intermediate operator terms below this magnitude to
	// control the combinatorial growth of the BCH expansion (default 1e-10).
	TermCut float64
}

// DownfoldResult carries the effective active-space problem.
type DownfoldResult struct {
	Molecule        *MolecularData
	ActiveOrbitals  int
	ActiveElectrons int
	// Fermionic is the normal-ordered effective Hamiltonian on the active
	// modes (2·ActiveOrbitals spin orbitals).
	Fermionic *fermion.Op
	// Qubit is its Jordan–Wigner image (Hermitian).
	Qubit *pauli.Op
	// SigmaTerms is the number of external-cluster amplitudes used.
	SigmaTerms int
}

// orbitalEnergies returns diagonal Fock eigenvalue estimates
// ε_p = h_pp + Σ_{k∈occ} (⟨pk|pk⟩ − ⟨pk|kp⟩) per spin orbital.
func orbitalEnergies(m *MolecularData) []float64 {
	nso := m.NumSpinOrbitals()
	occ := aufbauOccupation(m.NumElectrons)
	eps := make([]float64, nso)
	for p := 0; p < nso; p++ {
		e := m.OneBody[p/2][p/2]
		for _, k := range occ {
			e += coulomb(m, p, k) - exchange(m, p, k)
		}
		eps[p] = e
	}
	return eps
}

// antisym returns ⟨pq||rs⟩ = ⟨pq|rs⟩ − ⟨pq|sr⟩ over spin orbitals, with
// ⟨pq|rs⟩ = (p r|q s)(spatial, chemist) · δ(σp,σr) · δ(σq,σs).
func antisym(m *MolecularData, p, q, r, s int) float64 {
	direct := 0.0
	if p%2 == r%2 && q%2 == s%2 {
		direct = m.TwoBody[p/2][r/2][q/2][s/2]
	}
	exch := 0.0
	if p%2 == s%2 && q%2 == r%2 {
		exch = m.TwoBody[p/2][s/2][q/2][r/2]
	}
	return direct - exch
}

// externalSigma builds the anti-Hermitian cluster operator σ = T − T†
// from MP2-like doubles (and MP1-like singles) whose excitations leave
// the active space.
func externalSigma(m *MolecularData, nActiveModes int, cut float64) (*fermion.Op, int) {
	nso := m.NumSpinOrbitals()
	ne := m.NumElectrons
	eps := orbitalEnergies(m)
	t := fermion.NewOp()
	count := 0

	// Singles: i∈occ → a∈virt, external a only.
	for i := 0; i < ne; i++ {
		for a := ne; a < nso; a++ {
			if a < nActiveModes {
				continue
			}
			if i%2 != a%2 {
				continue
			}
			f := m.OneBody[a/2][i/2]
			for k := 0; k < ne; k++ {
				f += antisym(m, a, k, i, k)
			}
			denom := eps[i] - eps[a]
			if math.Abs(denom) < 1e-6 {
				continue
			}
			amp := f / denom
			if math.Abs(amp) < cut {
				continue
			}
			t.AddTerm(fermion.Term{Coeff: complex(amp, 0), Ops: []fermion.Ladder{
				{Mode: a, Dagger: true}, {Mode: i, Dagger: false},
			}})
			count++
		}
	}
	// Doubles: i<j occ → a<b virt with at least one external index.
	for i := 0; i < ne; i++ {
		for j := i + 1; j < ne; j++ {
			for a := ne; a < nso; a++ {
				for b := a + 1; b < nso; b++ {
					if a < nActiveModes && b < nActiveModes {
						continue // internal excitation: belongs to the active solver
					}
					v := antisym(m, a, b, i, j)
					if math.Abs(v) < cut {
						continue
					}
					denom := eps[i] + eps[j] - eps[a] - eps[b]
					if math.Abs(denom) < 1e-6 {
						continue
					}
					amp := v / denom
					if math.Abs(amp) < cut {
						continue
					}
					t.AddTerm(fermion.Term{Coeff: complex(amp, 0), Ops: []fermion.Ladder{
						{Mode: a, Dagger: true}, {Mode: b, Dagger: true},
						{Mode: j, Dagger: false}, {Mode: i, Dagger: false},
					}})
					count++
				}
			}
		}
	}
	sigma := t.Clone()
	sigma.Add(t.Adjoint(), -1)
	return sigma, count
}

// projectActive normal-orders the operator and keeps only terms acting
// entirely inside the active modes. For a normal-ordered operator this
// equals P·O·P on the CAS (external modes unoccupied): any surviving
// external annihilator kills CAS states on the right, any external
// creator is killed by the projector on the left.
func projectActive(op *fermion.Op, nActiveModes int) *fermion.Op {
	no := op.NormalOrder()
	out := fermion.NewOp()
	for _, t := range no.Terms() {
		keep := true
		for _, l := range t.Ops {
			if l.Mode >= nActiveModes {
				keep = false
				break
			}
		}
		if keep {
			out.AddTerm(t)
		}
	}
	return out
}

// Downfold performs Hermitian CC downfolding and returns the active-space
// effective Hamiltonian.
func Downfold(m *MolecularData, opts DownfoldOptions) (*DownfoldResult, error) {
	if opts.ActiveOrbitals <= 0 || opts.ActiveOrbitals > m.NumOrbitals {
		return nil, fmt.Errorf("%w: active orbitals %d of %d", core.ErrInvalidArgument, opts.ActiveOrbitals, m.NumOrbitals)
	}
	nActiveModes := 2 * opts.ActiveOrbitals
	if m.NumElectrons > nActiveModes {
		return nil, fmt.Errorf("%w: %d electrons exceed active space %d", core.ErrInvalidArgument, m.NumElectrons, nActiveModes)
	}
	if opts.Order < 0 || opts.Order > 2 {
		return nil, fmt.Errorf("%w: order %d", core.ErrInvalidArgument, opts.Order)
	}
	ampCut := opts.AmplitudeCut
	if ampCut == 0 {
		ampCut = 1e-8
	}
	termCut := opts.TermCut
	if termCut == 0 {
		termCut = 1e-10
	}

	h := FermionicHamiltonian(m)
	sigma, nAmp := externalSigma(m, nActiveModes, ampCut)

	// BCH: H + [H,σ] + ½[[H,σ],σ] (σ anti-Hermitian keeps H_eff Hermitian
	// at every order).
	acc := h.Clone()
	if opts.Order >= 1 && sigma.NumTerms() > 0 {
		c1 := h.Commutator(sigma)
		c1 = chopFermi(c1, termCut)
		acc.Add(c1, 1)
		if opts.Order >= 2 {
			c2 := c1.Commutator(sigma)
			c2 = chopFermi(c2, termCut)
			acc.Add(c2, 0.5)
		}
	}

	eff := projectActive(acc, nActiveModes)
	q := eff.JordanWigner().HermitianPart()
	return &DownfoldResult{
		Molecule:        m,
		ActiveOrbitals:  opts.ActiveOrbitals,
		ActiveElectrons: m.NumElectrons,
		Fermionic:       eff,
		Qubit:           q,
		SigmaTerms:      nAmp,
	}, nil
}

// chopFermi drops fermionic terms with tiny coefficients.
func chopFermi(op *fermion.Op, tol float64) *fermion.Op {
	out := fermion.NewOp()
	for _, t := range op.Terms() {
		if math.Hypot(real(t.Coeff), imag(t.Coeff)) > tol {
			out.AddTerm(t)
		}
	}
	return out
}

// BareActive returns the zeroth-order comparison: the Hamiltonian simply
// projected onto the active space with no commutator corrections (the
// "bare Hamiltonian diagonalization" baseline of paper §2).
func BareActive(m *MolecularData, activeOrbitals int) (*DownfoldResult, error) {
	return Downfold(m, DownfoldOptions{ActiveOrbitals: activeOrbitals, Order: 0})
}
