package chem

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/linalg"
	"repro/internal/pauli"
)

func TestH2Validates(t *testing.T) {
	if err := H2().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticValidates(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		m := Synthetic(SyntheticOptions{NumOrbitals: n, NumElectrons: n, Seed: uint64(n)})
		if err := m.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestHubbardValidates(t *testing.T) {
	if err := Hubbard(4, 1, 4, 4).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	m := H2()
	m.OneBody[0][1] = 0.5 // break h symmetry
	if err := m.Validate(); err == nil {
		t.Error("asymmetric h accepted")
	}
}

func TestH2HartreeFockEnergy(t *testing.T) {
	// Literature RHF/STO-3G energy at R=0.7414 Å: −1.11668 Ha.
	e := HartreeFockEnergy(H2())
	if math.Abs(e-(-1.11668)) > 2e-4 {
		t.Errorf("HF energy %v, want ≈ -1.11668", e)
	}
}

func TestH2FCIEnergy(t *testing.T) {
	// Literature FCI/STO-3G energy: −1.13727 Ha.
	res, err := FCI(H2())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-(-1.13727)) > 2e-4 {
		t.Errorf("FCI energy %v, want ≈ -1.13727", res.Energy)
	}
	// Correlation energy is negative and small.
	if res.Energy >= HartreeFockEnergy(H2()) {
		t.Error("FCI above HF")
	}
}

func TestQubitHamiltonianHermitian(t *testing.T) {
	q := QubitHamiltonian(H2())
	if !q.IsHermitian(1e-10) {
		t.Error("qubit Hamiltonian not Hermitian")
	}
	if q.MaxQubit() != 3 {
		t.Errorf("acts on qubit %d, want 3", q.MaxQubit())
	}
}

func TestQubitHamiltonianMatchesSectorFCI(t *testing.T) {
	// The full-space qubit matrix restricted to the 2-electron sector must
	// reproduce the determinant-space FCI energy.
	m := H2()
	q := QubitHamiltonian(m)
	dense := q.ToDense(4)
	if !dense.IsHermitian(1e-9) {
		t.Fatal("dense form not Hermitian")
	}
	res, err := FCI(m)
	if err != nil {
		t.Fatal(err)
	}
	// Check H·v = E·v for the scattered FCI ground vector.
	v := res.FullVector()
	hv := dense.MulVec(v)
	for i := range v {
		if !core.AlmostEqualC(hv[i], complex(res.Energy, 0)*v[i], 1e-7) {
			t.Fatalf("FCI vector is not an eigenvector of the qubit Hamiltonian (index %d)", i)
		}
	}
}

func TestHFDeterminantExpectation(t *testing.T) {
	// ⟨HF|H|HF⟩ evaluated on the JW qubit Hamiltonian must equal the
	// closed-form HF energy — a deep consistency check across integrals,
	// fermionic algebra, and JW.
	for _, m := range []*MolecularData{H2(), Synthetic(SyntheticOptions{NumOrbitals: 3, NumElectrons: 2, Seed: 7}), Hubbard(3, 1, 2, 2)} {
		q := QubitHamiltonian(m)
		det := HartreeFockDeterminant(m)
		// ⟨det|H|det⟩ = real part of the diagonal matrix element.
		var e complex128
		for _, term := range q.Terms() {
			j, ph := term.P.ApplyToBasis(det)
			if j == det {
				e += term.Coeff * ph
			}
		}
		want := HartreeFockEnergy(m)
		if math.Abs(real(e)-want) > 1e-8 {
			t.Errorf("%s: qubit ⟨HF|H|HF⟩ = %v, closed form %v", m.Name, real(e), want)
		}
	}
}

func TestEnumerateDeterminants(t *testing.T) {
	dets := enumerateDeterminants(4, 2)
	if len(dets) != 6 {
		t.Fatalf("C(4,2) = %d, want 6", len(dets))
	}
	for i, d := range dets {
		if popcount(d) != 2 {
			t.Errorf("det %b has wrong electron count", d)
		}
		if i > 0 && dets[i-1] >= d {
			t.Error("not sorted")
		}
	}
	if len(enumerateDeterminants(4, 0)) != 1 {
		t.Error("empty sector")
	}
	if enumerateDeterminants(4, 5) != nil {
		t.Error("overfull sector should be empty")
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestApplyLadderProduct(t *testing.T) {
	// a_1† a_0 |01⟩ = |10⟩ (modes 0 occupied → move to 1).
	ops := []fermion.Ladder{{Mode: 1, Dagger: true}, {Mode: 0, Dagger: false}}
	out, sign, ok := ApplyLadderProduct(ops, 0b01)
	if !ok || out != 0b10 || sign != 1 {
		t.Errorf("got %b sign %v ok %v", out, sign, ok)
	}
	// Annihilating an empty mode vanishes.
	if _, _, ok := ApplyLadderProduct([]fermion.Ladder{{Mode: 3, Dagger: false}}, 0b01); ok {
		t.Error("should vanish")
	}
	// Creating on an occupied mode vanishes.
	if _, _, ok := ApplyLadderProduct([]fermion.Ladder{{Mode: 0, Dagger: true}}, 0b01); ok {
		t.Error("should vanish")
	}
	// Fermionic sign: a_0 a_2 |101⟩ → a_2 (applied first) crosses the
	// occupied mode 0 → −|001⟩; then a_0 gives −|000⟩.
	out, sign, ok = ApplyLadderProduct([]fermion.Ladder{{Mode: 0, Dagger: false}, {Mode: 2, Dagger: false}}, 0b101)
	if !ok || out != 0 || sign != -1 {
		t.Errorf("sign test: %b %v %v", out, sign, ok)
	}
}

func TestSectorMatrixMatchesQubitProjection(t *testing.T) {
	// The sector matrix must equal the full JW matrix restricted to
	// sector determinants.
	m := Synthetic(SyntheticOptions{NumOrbitals: 2, NumElectrons: 2, Seed: 3})
	h := FermionicHamiltonian(m)
	sp, dets, err := SectorMatrix(h, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := h.JordanWigner().ToDense(4)
	sec := sp.Dense()
	for i, di := range dets {
		for j, dj := range dets {
			if !core.AlmostEqualC(sec.At(i, j), full.At(int(di), int(dj)), 1e-9) {
				t.Fatalf("element (%d,%d): %v vs %v", i, j, sec.At(i, j), full.At(int(di), int(dj)))
			}
		}
	}
}

func TestFCIVariationalBound(t *testing.T) {
	// FCI ≤ HF for any molecule (variational principle).
	for _, m := range []*MolecularData{
		H2(),
		Synthetic(SyntheticOptions{NumOrbitals: 3, NumElectrons: 4, Seed: 11}),
		Hubbard(3, 1, 3, 2),
	} {
		res, err := FCI(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if res.Energy > HartreeFockEnergy(m)+1e-9 {
			t.Errorf("%s: FCI %v above HF %v", m.Name, res.Energy, HartreeFockEnergy(m))
		}
	}
}

func TestHubbardAtomLimit(t *testing.T) {
	// Single-site Hubbard with 2 electrons: E = U.
	m := Hubbard(1, 0, 4.0, 2)
	res, err := FCI(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-4.0) > 1e-9 {
		t.Errorf("Hubbard atom E = %v, want 4", res.Energy)
	}
}

func TestHubbardDimerExact(t *testing.T) {
	// Half-filled Hubbard dimer ground energy: E = (U − sqrt(U² + 16t²))/2.
	tHop, u := 1.0, 4.0
	m := Hubbard(2, tHop, u, 2)
	res, err := FCI(m)
	if err != nil {
		t.Fatal(err)
	}
	want := (u - math.Sqrt(u*u+16*tHop*tHop)) / 2
	if math.Abs(res.Energy-want) > 1e-9 {
		t.Errorf("dimer E = %v, want %v", res.Energy, want)
	}
}

func TestSectorDimension(t *testing.T) {
	if SectorDimension(12, 8) != 495 {
		t.Errorf("C(12,8) = %d", SectorDimension(12, 8))
	}
}

func TestWaterLikeShape(t *testing.T) {
	m := WaterLike()
	if m.NumSpinOrbitals() != 12 || m.NumElectrons != 8 {
		t.Fatalf("water model: %d spin orbitals, %d electrons", m.NumSpinOrbitals(), m.NumElectrons)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWaterLikeScaledTermGrowth(t *testing.T) {
	// Term counts must grow superlinearly with qubit count (Fig 1b shape).
	t12 := QubitHamiltonian(WaterLikeScaled(6)).NumTerms()
	t16 := QubitHamiltonian(WaterLikeScaled(8)).NumTerms()
	if t16 <= t12 {
		t.Errorf("no growth: %d → %d", t12, t16)
	}
	ratio := float64(t16) / float64(t12)
	// O(N⁴) growth predicts (8/6)⁴ ≈ 3.2; demand clearly superlinear.
	if ratio < 1.5 {
		t.Errorf("growth ratio %v too small for quartic scaling", ratio)
	}
}

func TestDownfoldShapes(t *testing.T) {
	m := Synthetic(SyntheticOptions{NumOrbitals: 3, NumElectrons: 2, Seed: 5})
	res, err := Downfold(m, DownfoldOptions{ActiveOrbitals: 2, Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Qubit.MaxQubit() >= 4 {
		t.Errorf("effective Hamiltonian escapes active space: qubit %d", res.Qubit.MaxQubit())
	}
	if !res.Qubit.IsHermitian(1e-8) {
		t.Error("effective Hamiltonian not Hermitian")
	}
	if res.SigmaTerms == 0 {
		t.Error("no external amplitudes found")
	}
}

func TestDownfoldImprovesOnBareProjection(t *testing.T) {
	// The paper's core claim for downfolding: commutator-corrected
	// H_eff recovers the full-space ground energy better than bare
	// truncation. Verify on weakly-correlated synthetic systems.
	improved := 0
	total := 0
	for seed := uint64(1); seed <= 5; seed++ {
		m := Synthetic(SyntheticOptions{NumOrbitals: 3, NumElectrons: 2, Seed: seed, Decay: 1.2, Correlation: 0.25})
		full, err := FCI(m)
		if err != nil {
			t.Fatal(err)
		}
		bare, err := BareActive(m, 2)
		if err != nil {
			t.Fatal(err)
		}
		down, err := Downfold(m, DownfoldOptions{ActiveOrbitals: 2, Order: 2})
		if err != nil {
			t.Fatal(err)
		}
		eBare, err := FCIofOp(bare.Fermionic, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		eDown, err := FCIofOp(down.Fermionic, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		errBare := math.Abs(eBare.Energy - full.Energy)
		errDown := math.Abs(eDown.Energy - full.Energy)
		total++
		if errDown < errBare {
			improved++
		}
	}
	if improved < 3 {
		t.Errorf("downfolding improved only %d/%d cases", improved, total)
	}
}

func TestDownfoldOrderZeroEqualsBare(t *testing.T) {
	m := Synthetic(SyntheticOptions{NumOrbitals: 3, NumElectrons: 2, Seed: 9})
	a, err := Downfold(m, DownfoldOptions{ActiveOrbitals: 2, Order: 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BareActive(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Qubit.Equal(b.Qubit, 1e-12) {
		t.Error("order-0 downfold differs from bare projection")
	}
}

func TestDownfoldRejectsBadOptions(t *testing.T) {
	m := H2()
	if _, err := Downfold(m, DownfoldOptions{ActiveOrbitals: 0}); err == nil {
		t.Error("zero active orbitals accepted")
	}
	if _, err := Downfold(m, DownfoldOptions{ActiveOrbitals: 5}); err == nil {
		t.Error("active > total accepted")
	}
	if _, err := Downfold(m, DownfoldOptions{ActiveOrbitals: 2, Order: 3}); err == nil {
		t.Error("order 3 accepted")
	}
	tiny := Synthetic(SyntheticOptions{NumOrbitals: 3, NumElectrons: 4, Seed: 1})
	if _, err := Downfold(tiny, DownfoldOptions{ActiveOrbitals: 1}); err == nil {
		t.Error("electrons exceeding active space accepted")
	}
}

func TestOrbitalEnergiesOrdering(t *testing.T) {
	m := Synthetic(SyntheticOptions{NumOrbitals: 4, NumElectrons: 2, Seed: 13})
	eps := orbitalEnergies(m)
	if len(eps) != 8 {
		t.Fatal("length")
	}
	// α/β of the same spatial orbital must be degenerate.
	for p := 0; p < 4; p++ {
		if math.Abs(eps[2*p]-eps[2*p+1]) > 1e-12 {
			t.Error("spin degeneracy broken")
		}
	}
}

func TestFermionicHamiltonianHermitian(t *testing.T) {
	m := Synthetic(SyntheticOptions{NumOrbitals: 2, NumElectrons: 2, Seed: 21})
	h := FermionicHamiltonian(m)
	d := h.JordanWigner().ToDense(4)
	if !d.IsHermitian(1e-9) {
		t.Error("fermionic Hamiltonian not Hermitian under JW")
	}
}

func TestQubitHamiltonianGroundViaLanczos(t *testing.T) {
	// Full-space Lanczos ground energy must be ≤ sector FCI energy (the
	// sector is a subspace) — and for H2 the global ground lies in the
	// 2-electron sector, so they must match.
	m := H2()
	q := QubitHamiltonian(m)
	e, _, err := linalg.LanczosGround(pauli.OpMatVec{Op: q, N: 4}, linalg.LanczosOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := FCI(m)
	if e > res.Energy+1e-8 {
		t.Errorf("full-space ground %v above sector ground %v", e, res.Energy)
	}
	if math.Abs(e-res.Energy) > 1e-6 {
		t.Logf("note: H2 global ground %v vs sector %v (different sector)", e, res.Energy)
	}
}

func TestTaperedHamiltonianH2(t *testing.T) {
	m := H2()
	res, err := TaperedHamiltonian(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumQubits != 1 {
		t.Fatalf("H2 tapered to %d qubits, want 1", res.NumQubits)
	}
	fci, err := FCI(m)
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := linalg.GroundState(res.Tapered.ToDense(res.NumQubits))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-fci.Energy) > 1e-8 {
		t.Errorf("tapered ground %v vs FCI %v", e, fci.Energy)
	}
}

func TestTaperedHamiltonianSynthetic(t *testing.T) {
	m := Synthetic(SyntheticOptions{NumOrbitals: 3, NumElectrons: 2, Seed: 8})
	res, err := TaperedHamiltonian(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumQubits >= m.NumSpinOrbitals() {
		t.Fatalf("no qubit reduction: %d", res.NumQubits)
	}
	fci, err := FCI(m)
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := linalg.LanczosGround(pauli.OpMatVec{Op: res.Tapered, N: res.NumQubits}, linalg.LanczosOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e > fci.Energy+1e-8 {
		t.Errorf("tapered sector ground %v above FCI %v", e, fci.Energy)
	}
	if math.Abs(e-fci.Energy) > 1e-6 {
		t.Logf("note: HF sector ground %v vs FCI %v (global ground may sit in another sector)", e, fci.Energy)
	}
}

func TestMP2BetweenHFAndFCI(t *testing.T) {
	// For weakly correlated systems MP2 recovers part of the correlation
	// energy: E_FCI ≤ E_MP2 < E_HF (the first inequality is not a strict
	// theorem but holds for these systems).
	for _, m := range []*MolecularData{
		H2(),
		Synthetic(SyntheticOptions{NumOrbitals: 3, NumElectrons: 2, Seed: 4, Correlation: 0.25, Decay: 1.2}),
	} {
		hf := HartreeFockEnergy(m)
		mp2 := MP2Energy(m)
		fci, err := FCI(m)
		if err != nil {
			t.Fatal(err)
		}
		if mp2 >= hf {
			t.Errorf("%s: MP2 %v not below HF %v", m.Name, mp2, hf)
		}
		if mp2 < fci.Energy-0.05 {
			t.Errorf("%s: MP2 %v far below FCI %v (overshoot)", m.Name, mp2, fci.Energy)
		}
	}
}

func TestMP2H2LiteratureValue(t *testing.T) {
	// H2/STO-3G MP2 correlation ≈ −0.013 Ha → E_MP2 ≈ −1.130 Ha.
	mp2 := MP2Energy(H2())
	if math.Abs(mp2-(-1.1298)) > 2e-3 {
		t.Errorf("MP2 = %v, want ≈ -1.1298", mp2)
	}
}
