// Package chem provides the quantum-chemistry substrate of the VQE
// workflow: molecular integral containers, built-in and synthetic
// molecular models, spin-orbital Hamiltonian construction, Hartree–Fock
// reference energies, determinant-space FCI (the exact reference every
// VQE result is judged against), and Hermitian coupled-cluster
// downfolding via commutator expansion (paper §2).
//
// Substitution note (documented in DESIGN.md): the paper consumes real
// H2O/cc-pV5Z integrals produced by TCE downfolding. Those data are not
// available here, so this package ships (a) the textbook H2/STO-3G
// integrals as a ground-truth anchor and (b) a parameterized synthetic
// integral generator with the symmetry and decay structure of real
// molecular integrals, which preserves the term-count scaling (Fig 1b)
// and the optimization behaviour (Fig 5) that the paper evaluates.
package chem

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// MolecularData holds spatial-orbital integrals in chemist notation:
// OneBody[p][q] = h_pq, TwoBody[p][q][r][s] = (pq|rs).
type MolecularData struct {
	Name             string
	NumOrbitals      int // spatial orbitals; spin orbitals = 2×this
	NumElectrons     int
	NuclearRepulsion float64
	OneBody          [][]float64
	TwoBody          [][][][]float64
}

// NumSpinOrbitals returns 2 × NumOrbitals (qubit count under JW).
func (m *MolecularData) NumSpinOrbitals() int { return 2 * m.NumOrbitals }

// Validate checks shapes and the 8-fold permutation symmetry of real
// two-electron integrals.
func (m *MolecularData) Validate() error {
	n := m.NumOrbitals
	if n <= 0 || m.NumElectrons < 0 || m.NumElectrons > 2*n {
		return fmt.Errorf("%w: %d orbitals / %d electrons", core.ErrInvalidArgument, n, m.NumElectrons)
	}
	if len(m.OneBody) != n || len(m.TwoBody) != n {
		return fmt.Errorf("%w: integral arrays sized %d/%d, want %d", core.ErrInvalidArgument, len(m.OneBody), len(m.TwoBody), n)
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if !core.AlmostEqual(m.OneBody[p][q], m.OneBody[q][p], 1e-9) {
				return fmt.Errorf("%w: h[%d][%d] asymmetric", core.ErrInvalidArgument, p, q)
			}
			for r := 0; r < n; r++ {
				for s := 0; s < n; s++ {
					v := m.TwoBody[p][q][r][s]
					for _, w := range []float64{
						m.TwoBody[q][p][r][s], m.TwoBody[p][q][s][r],
						m.TwoBody[r][s][p][q],
					} {
						if !core.AlmostEqual(v, w, 1e-9) {
							return fmt.Errorf("%w: (pq|rs) symmetry broken at %d%d%d%d", core.ErrInvalidArgument, p, q, r, s)
						}
					}
				}
			}
		}
	}
	return nil
}

// allocTwoBody returns a zeroed n⁴ array.
func allocTwoBody(n int) [][][][]float64 {
	g := make([][][][]float64, n)
	for p := range g {
		g[p] = make([][][]float64, n)
		for q := range g[p] {
			g[p][q] = make([][]float64, n)
			for r := range g[p][q] {
				g[p][q][r] = make([]float64, n)
			}
		}
	}
	return g
}

// allocOneBody returns a zeroed n² array.
func allocOneBody(n int) [][]float64 {
	h := make([][]float64, n)
	for p := range h {
		h[p] = make([]float64, n)
	}
	return h
}

// setSym8 writes (pq|rs)=v with full 8-fold symmetry.
func setSym8(g [][][][]float64, p, q, r, s int, v float64) {
	g[p][q][r][s] = v
	g[q][p][r][s] = v
	g[p][q][s][r] = v
	g[q][p][s][r] = v
	g[r][s][p][q] = v
	g[s][r][p][q] = v
	g[r][s][q][p] = v
	g[s][r][q][p] = v
}

// H2 returns the textbook H2/STO-3G model at bond length 0.7414 Å in the
// RHF molecular-orbital basis. FCI ground energy: −1.137270 Ha (±1e−5),
// HF energy: −1.116685 Ha.
func H2() *MolecularData {
	m := &MolecularData{
		Name:             "H2/STO-3G (R=0.7414Å)",
		NumOrbitals:      2,
		NumElectrons:     2,
		NuclearRepulsion: 0.71375100025,
		OneBody:          allocOneBody(2),
		TwoBody:          allocTwoBody(2),
	}
	m.OneBody[0][0] = -1.25246357
	m.OneBody[1][1] = -0.47594871
	setSym8(m.TwoBody, 0, 0, 0, 0, 0.67449330)
	setSym8(m.TwoBody, 1, 1, 1, 1, 0.69739794)
	setSym8(m.TwoBody, 0, 0, 1, 1, 0.66347091)
	setSym8(m.TwoBody, 0, 1, 0, 1, 0.18128881)
	return m
}

// SyntheticOptions parameterizes the synthetic molecular generator.
type SyntheticOptions struct {
	NumOrbitals  int
	NumElectrons int
	Seed         uint64
	// Decay controls exponential suppression of off-diagonal and spread
	// integrals, emulating the locality/point-group sparsity of real
	// downfolded Hamiltonians (larger = sparser).
	Decay float64
	// Correlation scales the two-electron integrals relative to the
	// one-electron gap; larger means stronger static correlation and
	// slower VQE convergence.
	Correlation float64
	// Threshold drops integrals below this magnitude (sparsity knob for
	// the Fig 1b term-count reproduction).
	Threshold float64
}

// Synthetic builds a random-but-physically-shaped molecule: Hermitian
// one-body integrals with increasing orbital energies and 8-fold symmetric
// two-electron integrals with exponential decay in index spread.
func Synthetic(opts SyntheticOptions) *MolecularData {
	n := opts.NumOrbitals
	if n <= 0 {
		panic(core.ErrInvalidArgument)
	}
	if opts.Decay == 0 {
		opts.Decay = 0.9
	}
	if opts.Correlation == 0 {
		opts.Correlation = 0.35
	}
	rng := core.NewRNG(opts.Seed + 0xC0FFEE)
	m := &MolecularData{
		Name:             fmt.Sprintf("synthetic(n=%d,e=%d,seed=%d)", n, opts.NumElectrons, opts.Seed),
		NumOrbitals:      n,
		NumElectrons:     opts.NumElectrons,
		NuclearRepulsion: 1.0 + 0.5*rng.Float64(),
		OneBody:          allocOneBody(n),
		TwoBody:          allocTwoBody(n),
	}
	// Orbital energies rise roughly linearly (core → virtual), mimicking a
	// canonical MO ordering; off-diagonals decay with |p−q|.
	for p := 0; p < n; p++ {
		m.OneBody[p][p] = -2.0 + 0.45*float64(p) + 0.05*rng.NormFloat64()
		for q := p + 1; q < n; q++ {
			v := 0.1 * rng.NormFloat64() * math.Exp(-opts.Decay*float64(q-p))
			if math.Abs(v) < opts.Threshold {
				v = 0
			}
			m.OneBody[p][q] = v
			m.OneBody[q][p] = v
		}
	}
	// Two-electron integrals: Coulomb-dominated diagonal, decaying
	// exchange and spread terms, 8-fold symmetric.
	for p := 0; p < n; p++ {
		for q := p; q < n; q++ {
			for r := 0; r < n; r++ {
				for s := r; s < n; s++ {
					if p*n+q > r*n+s {
						continue // canonical representative only
					}
					spread := math.Abs(float64(p-q)) + math.Abs(float64(r-s)) + math.Abs(float64(p-r))
					var v float64
					switch {
					case p == q && r == s && p == r:
						v = 0.6 + 0.1*rng.Float64() // (pp|pp) Coulomb
					case p == q && r == s:
						v = (0.4 + 0.1*rng.Float64()) * math.Exp(-0.15*math.Abs(float64(p-r)))
					default:
						v = opts.Correlation * 0.25 * rng.NormFloat64() * math.Exp(-opts.Decay*spread)
					}
					if math.Abs(v) < opts.Threshold {
						v = 0
					}
					setSym8(m.TwoBody, p, q, r, s, v)
				}
			}
		}
	}
	return m
}

// WaterLike returns the synthetic stand-in for the paper's downfolded
// 6-orbital H2O active space (12 qubits, 8 active electrons after
// freezing the oxygen core) used in the Figure 5 Adapt-VQE experiment.
func WaterLike() *MolecularData {
	m := Synthetic(SyntheticOptions{
		NumOrbitals:  6,
		NumElectrons: 8,
		Seed:         2023,
		Decay:        0.8,
		Correlation:  0.45,
	})
	m.Name = "H2O-like downfolded 6-orbital model"
	return m
}

// WaterLikeScaled returns a family of downfolded-H2O-like models with
// growing active spaces, used for the Figure 1a/1b scaling sweeps
// (12–30 qubits = 6–15 spatial orbitals). Electron count follows water's
// 8 active electrons.
func WaterLikeScaled(numOrbitals int) *MolecularData {
	// Decay/threshold calibrated so the Pauli-term count tracks the
	// paper's Figure 1b: ≈1.7k terms at 12 qubits, ≈27k at 30 qubits.
	m := Synthetic(SyntheticOptions{
		NumOrbitals:  numOrbitals,
		NumElectrons: 8,
		Seed:         2023,
		Decay:        0.3,
		Correlation:  0.4,
		Threshold:    2e-3,
	})
	m.Name = fmt.Sprintf("H2O-like downfolded %d-orbital model", numOrbitals)
	return m
}

// Hubbard returns a 1D Hubbard chain (sites spatial orbitals, open
// boundary, hopping t, on-site repulsion U) expressed in the same
// integral containers — a second exactly-solvable validation family.
func Hubbard(sites int, tHop, u float64, electrons int) *MolecularData {
	m := &MolecularData{
		Name:         fmt.Sprintf("Hubbard(L=%d,t=%g,U=%g)", sites, tHop, u),
		NumOrbitals:  sites,
		NumElectrons: electrons,
		OneBody:      allocOneBody(sites),
		TwoBody:      allocTwoBody(sites),
	}
	for i := 0; i+1 < sites; i++ {
		m.OneBody[i][i+1] = -tHop
		m.OneBody[i+1][i] = -tHop
	}
	for i := 0; i < sites; i++ {
		// (ii|ii) = U gives U·n_{i↑}n_{i↓} in the spin-orbital Hamiltonian.
		m.TwoBody[i][i][i][i] = u
	}
	return m
}
