package chem

import (
	"math"
	"testing"

	"repro/internal/ansatz"
	"repro/internal/pauli"
	"repro/internal/state"
)

func expectOn(t *testing.T, s *state.State, op *pauli.Op) float64 {
	t.Helper()
	return pauli.Expectation(s, op, pauli.ExpectationOptions{})
}

func TestNumberOperatorOnDeterminants(t *testing.T) {
	n := 4
	num := NumberOperator(n)
	for det := uint64(0); det < 16; det++ {
		s := state.New(n, state.Options{})
		amps := s.Amplitudes()
		amps[0] = 0
		amps[det] = 1
		want := float64(popcount(det))
		if got := expectOn(t, s, num); math.Abs(got-want) > 1e-10 {
			t.Errorf("det %04b: ⟨N⟩ = %v, want %v", det, got, want)
		}
	}
}

func TestSzOperatorOnDeterminants(t *testing.T) {
	sz := SzOperator(2) // 4 spin orbitals: 0α 0β 1α 1β
	cases := map[uint64]float64{
		0b0000: 0,
		0b0001: 0.5,  // 0α
		0b0010: -0.5, // 0β
		0b0011: 0,    // 0α0β
		0b0101: 1,    // 0α1α
		0b1010: -1,   // 0β1β
	}
	for det, want := range cases {
		s := state.New(4, state.Options{})
		s.Amplitudes()[0] = 0
		s.Amplitudes()[det] = 1
		if got := expectOn(t, s, sz); math.Abs(got-want) > 1e-10 {
			t.Errorf("det %04b: ⟨Sz⟩ = %v, want %v", det, got, want)
		}
	}
}

func TestS2OnSingletAndTriplet(t *testing.T) {
	s2 := S2Operator(2)
	// Closed-shell determinant |0α0β⟩ is a singlet: S² = 0.
	s := state.New(4, state.Options{})
	s.Amplitudes()[0] = 0
	s.Amplitudes()[0b0011] = 1
	if got := expectOn(t, s, s2); math.Abs(got) > 1e-10 {
		t.Errorf("closed shell S² = %v, want 0", got)
	}
	// |0α1α⟩ (two parallel spins) is a triplet: S² = s(s+1) = 2.
	s2state := state.New(4, state.Options{})
	s2state.Amplitudes()[0] = 0
	s2state.Amplitudes()[0b0101] = 1
	if got := expectOn(t, s2state, s2); math.Abs(got-2) > 1e-10 {
		t.Errorf("parallel spins S² = %v, want 2", got)
	}
}

func TestH2GroundStateIsSinglet(t *testing.T) {
	fci, err := FCI(H2())
	if err != nil {
		t.Fatal(err)
	}
	s, err := state.FromAmplitudes(fci.FullVector(), state.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := expectOn(t, s, S2Operator(2)); math.Abs(got) > 1e-8 {
		t.Errorf("H2 ground S² = %v, want 0", got)
	}
	if got := expectOn(t, s, NumberOperator(4)); math.Abs(got-2) > 1e-8 {
		t.Errorf("H2 ground ⟨N⟩ = %v, want 2", got)
	}
}

func TestUCCSDConservesSymmetries(t *testing.T) {
	// Spin-conserving UCCSD keeps ⟨N⟩ and ⟨Sz⟩ exactly at every θ.
	u, err := ansatz.NewUCCSD(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	num := NumberOperator(6)
	sz := SzOperator(3)
	params := make([]float64, u.NumParameters())
	for i := range params {
		params[i] = 0.15 * float64(i%4-2)
	}
	s := state.New(6, state.Options{})
	s.Run(u.Circuit(params))
	if got := expectOn(t, s, num); math.Abs(got-2) > 1e-9 {
		t.Errorf("⟨N⟩ drifted: %v", got)
	}
	if got := expectOn(t, s, sz); math.Abs(got) > 1e-9 {
		t.Errorf("⟨Sz⟩ drifted: %v", got)
	}
}

func TestSymmetryOperatorsCommuteWithHamiltonian(t *testing.T) {
	for _, m := range []*MolecularData{H2(), Hubbard(2, 1, 3, 2)} {
		h := QubitHamiltonian(m)
		num := NumberOperator(m.NumSpinOrbitals())
		sz := SzOperator(m.NumOrbitals)
		if c := h.Commutator(num); c.OneNorm() > 1e-8 {
			t.Errorf("%s: [H, N] ≠ 0 (‖·‖₁ = %v)", m.Name, c.OneNorm())
		}
		if c := h.Commutator(sz); c.OneNorm() > 1e-8 {
			t.Errorf("%s: [H, Sz] ≠ 0 (‖·‖₁ = %v)", m.Name, c.OneNorm())
		}
	}
}
