// Package batch implements the paper's §6.2 "batch execution" direction:
// concurrent simulation of independent circuits across a worker pool —
// within a node the analogue of concurrent GPU kernels, across workers the
// analogue of distributing independent circuits over nodes — plus the
// EQC-style ensemble execution of whole VQE instances (paper ref [15]).
package batch

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ansatz"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/pauli"
	"repro/internal/state"
	"repro/internal/vqe"
)

// Job is one independent circuit execution request.
type Job struct {
	ID      int
	Circuit *circuit.Circuit
	// Observable, when non-nil, asks for ⟨ψ|O|ψ⟩ of the final state;
	// otherwise the outcome distribution is returned.
	Observable *pauli.Op
	// Shots samples the distribution (0 = exact probabilities).
	Shots int
	Seed  uint64
}

// Result is the outcome of one job.
type Result struct {
	ID            int
	Expectation   float64
	Probabilities []float64
	Counts        map[uint64]int
	Err           error
}

// Pool executes independent jobs concurrently with bounded parallelism.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given concurrency (0 = 4).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = 4
	}
	return &Pool{workers: workers}
}

// Workers returns the concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// ExecuteAll runs every job and returns results ordered by job index
// (input order). Individual failures are reported per job, not globally.
func (p *Pool) ExecuteAll(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = runJob(jobs[i])
		}(i)
	}
	wg.Wait()
	return results
}

func runJob(j Job) (res Result) {
	res.ID = j.ID
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("batch: job %d: %v", j.ID, r)
		}
	}()
	if j.Circuit == nil {
		res.Err = fmt.Errorf("batch: job %d: %w: nil circuit", j.ID, core.ErrInvalidArgument)
		return res
	}
	// Each job owns its simulator: jobs are independent by construction,
	// so the only shared state is the read-only circuit.
	s := state.New(j.Circuit.NumQubits, state.Options{Workers: 1, Seed: j.Seed + 1})
	s.Run(j.Circuit)
	switch {
	case j.Observable != nil:
		// Workers 1, explicitly: parallelism comes from running many jobs
		// at once, so each job's batched reduction must stay serial (an
		// ExpectationOptions zero value now means GOMAXPROCS).
		res.Expectation = pauli.Expectation(s, j.Observable, pauli.ExpectationOptions{Workers: 1})
	case j.Shots > 0:
		res.Counts = s.SampleCounts(j.Shots)
	default:
		res.Probabilities = s.Probabilities()
	}
	return res
}

// Energies evaluates ⟨H⟩ for many parameter sets of one ansatz
// concurrently — the batched VQE-iteration pattern of §6.2.
func (p *Pool) Energies(h *pauli.Op, a ansatz.Ansatz, paramSets [][]float64) ([]float64, error) {
	if h.MaxQubit() >= a.NumQubits() {
		return nil, core.QubitError(h.MaxQubit(), a.NumQubits())
	}
	jobs := make([]Job, len(paramSets))
	for i, ps := range paramSets {
		if len(ps) != a.NumParameters() {
			return nil, fmt.Errorf("%w: parameter set %d has %d values, want %d",
				core.ErrDimensionMismatch, i, len(ps), a.NumParameters())
		}
		jobs[i] = Job{ID: i, Circuit: a.Circuit(ps), Observable: h}
	}
	results := p.ExecuteAll(jobs)
	out := make([]float64, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		out[i] = r.Expectation
	}
	return out, nil
}

// Gradient computes a central finite-difference gradient with all 2·dim
// perturbed energy evaluations executed concurrently.
func (p *Pool) Gradient(h *pauli.Op, a ansatz.Ansatz, params []float64, step float64) ([]float64, error) {
	if step <= 0 {
		step = 1e-6
	}
	dim := len(params)
	sets := make([][]float64, 0, 2*dim)
	for i := 0; i < dim; i++ {
		plus := append([]float64(nil), params...)
		plus[i] += step
		minus := append([]float64(nil), params...)
		minus[i] -= step
		sets = append(sets, plus, minus)
	}
	energies, err := p.Energies(h, a, sets)
	if err != nil {
		return nil, err
	}
	g := make([]float64, dim)
	for i := 0; i < dim; i++ {
		g[i] = (energies[2*i] - energies[2*i+1]) / (2 * step)
	}
	return g, nil
}

// EnsembleResult reports one member of an ensemble VQE run.
type EnsembleResult struct {
	Member int
	Energy float64
	Params []float64
	Err    error
}

// EnsembleVQE runs several independent VQE optimizations concurrently from
// different starting points (EQC-style ensembling, paper ref [15]) and
// returns all member results sorted by energy, best first.
func (p *Pool) EnsembleVQE(h *pauli.Op, makeAnsatz func() ansatz.Ansatz, members int, spread float64, seed uint64) ([]EnsembleResult, error) {
	if members < 1 {
		return nil, core.ErrInvalidArgument
	}
	results := make([]EnsembleResult, members)
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	rng := core.NewRNG(seed + 0xE9C)
	starts := make([][]float64, members)
	for m := range starts {
		a := makeAnsatz()
		x0 := make([]float64, a.NumParameters())
		if m > 0 { // member 0 starts from zero (the HF point)
			for i := range x0 {
				x0[i] = spread * rng.NormFloat64()
			}
		}
		starts[m] = x0
	}
	for m := 0; m < members; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[m] = runEnsembleMember(h, makeAnsatz(), starts[m], m)
		}(m)
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool {
		if (results[i].Err == nil) != (results[j].Err == nil) {
			return results[i].Err == nil
		}
		return results[i].Energy < results[j].Energy
	})
	return results, nil
}

func runEnsembleMember(h *pauli.Op, a ansatz.Ansatz, x0 []float64, m int) (res EnsembleResult) {
	res.Member = m
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("batch: ensemble member %d: %v", m, r)
		}
	}()
	drv, err := vqe.New(h, a, vqe.Options{Mode: vqe.Direct, Workers: 1})
	if err != nil {
		res.Err = err
		return res
	}
	r, err := drv.MinimizeLBFGS(x0, opt.LBFGSOptions{})
	if err != nil {
		// Fall back to derivative-free optimization for non-exponential
		// ansaetze.
		nm := drv.Minimize(x0, opt.NelderMeadOptions{MaxIter: 3000})
		res.Energy = nm.Energy
		res.Params = nm.Params
		return res
	}
	res.Energy = r.Energy
	res.Params = r.Params
	return res
}
