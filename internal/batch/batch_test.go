package batch

import (
	"math"
	"testing"

	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/circuit"
	"repro/internal/pauli"
)

func TestExecuteAllPreservesOrder(t *testing.T) {
	p := NewPool(3)
	var jobs []Job
	for i := 0; i < 10; i++ {
		c := circuit.New(2)
		if i%2 == 0 {
			c.X(0)
		}
		jobs = append(jobs, Job{ID: i, Circuit: c})
	}
	results := p.ExecuteAll(jobs)
	for i, r := range results {
		if r.ID != i {
			t.Fatalf("result %d has ID %d", i, r.ID)
		}
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		wantIdx := 0
		if i%2 == 0 {
			wantIdx = 1
		}
		if math.Abs(r.Probabilities[wantIdx]-1) > 1e-12 {
			t.Errorf("job %d distribution wrong", i)
		}
	}
}

func TestExecuteAllExpectations(t *testing.T) {
	p := NewPool(2)
	z, _ := pauli.Single('Z', 0)
	obs := pauli.NewOp().Add(z, 1)
	jobs := []Job{
		{ID: 0, Circuit: circuit.New(1), Observable: obs},      // |0⟩: +1
		{ID: 1, Circuit: circuit.New(1).X(0), Observable: obs}, // |1⟩: −1
		{ID: 2, Circuit: circuit.New(1).H(0), Observable: obs}, // |+⟩: 0
	}
	res := p.ExecuteAll(jobs)
	want := []float64{1, -1, 0}
	for i, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if math.Abs(r.Expectation-want[i]) > 1e-12 {
			t.Errorf("job %d: %v, want %v", i, r.Expectation, want[i])
		}
	}
}

func TestExecuteAllShots(t *testing.T) {
	p := NewPool(2)
	res := p.ExecuteAll([]Job{{Circuit: circuit.New(1).H(0), Shots: 2000, Seed: 3}})
	total := 0
	for _, c := range res[0].Counts {
		total += c
	}
	if total != 2000 {
		t.Errorf("shot total %d", total)
	}
}

func TestExecuteAllNilCircuit(t *testing.T) {
	p := NewPool(1)
	res := p.ExecuteAll([]Job{{ID: 7}})
	if res[0].Err == nil {
		t.Error("nil circuit accepted")
	}
}

func TestEnergiesMatchSequential(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	u, _ := ansatz.NewUCCSD(4, 2)
	sets := [][]float64{
		{0, 0, 0},
		{0.1, -0.05, 0.02},
		{-0.2, 0.3, 0.07},
		{0.05, 0.05, -0.11},
	}
	p := NewPool(4)
	batched, err := p.Energies(h, u, sets)
	if err != nil {
		t.Fatal(err)
	}
	for i, ps := range sets {
		c := u.Circuit(ps)
		job := runJob(Job{Circuit: c, Observable: h})
		if math.Abs(batched[i]-job.Expectation) > 1e-12 {
			t.Errorf("set %d: batched %v vs direct %v", i, batched[i], job.Expectation)
		}
	}
	// E(0) must be the HF energy.
	if math.Abs(batched[0]-chem.HartreeFockEnergy(m)) > 1e-8 {
		t.Errorf("E(0) = %v", batched[0])
	}
}

func TestEnergiesValidation(t *testing.T) {
	h := chem.QubitHamiltonian(chem.H2())
	u, _ := ansatz.NewUCCSD(4, 2)
	p := NewPool(2)
	if _, err := p.Energies(h, u, [][]float64{{1}}); err == nil {
		t.Error("bad parameter length accepted")
	}
	wide := pauli.NewOp().Add(pauli.MustParse("IIIIZ"), 1)
	if _, err := p.Energies(wide, u, nil); err == nil {
		t.Error("wide observable accepted")
	}
}

func TestBatchedGradientMatchesAnalytic(t *testing.T) {
	h := chem.QubitHamiltonian(chem.H2())
	u, _ := ansatz.NewUCCSD(4, 2)
	params := []float64{0.1, -0.07, 0.23}
	p := NewPool(4)
	g, err := p.Gradient(h, u, params, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against a one-sided sequential estimate.
	e0s := runJob(Job{Circuit: u.Circuit(params), Observable: h}).Expectation
	const hstep = 1e-6
	for i := range params {
		pp := append([]float64(nil), params...)
		pp[i] += hstep
		ep := runJob(Job{Circuit: u.Circuit(pp), Observable: h}).Expectation
		approx := (ep - e0s) / hstep
		if math.Abs(g[i]-approx) > 1e-4 {
			t.Errorf("grad[%d]: %v vs %v", i, g[i], approx)
		}
	}
}

func TestEnsembleVQEFindsGround(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, _ := chem.FCI(m)
	p := NewPool(4)
	results, err := p.EnsembleVQE(h, func() ansatz.Ansatz {
		u, _ := ansatz.NewUCCSD(4, 2)
		return u
	}, 5, 0.4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d results", len(results))
	}
	best := results[0]
	if best.Err != nil {
		t.Fatal(best.Err)
	}
	if math.Abs(best.Energy-fci.Energy) > 1e-6 {
		t.Errorf("ensemble best %v vs FCI %v", best.Energy, fci.Energy)
	}
	// Sorted ascending by energy.
	for i := 1; i < len(results); i++ {
		if results[i].Err == nil && results[i].Energy < results[i-1].Energy-1e-12 {
			t.Error("results not sorted")
		}
	}
}

func TestEnsembleValidation(t *testing.T) {
	p := NewPool(1)
	if _, err := p.EnsembleVQE(pauli.NewOp(), nil, 0, 0.1, 1); err == nil {
		t.Error("zero members accepted")
	}
}

func TestPoolDefaults(t *testing.T) {
	if NewPool(0).Workers() != 4 {
		t.Error("default workers")
	}
	if NewPool(7).Workers() != 7 {
		t.Error("explicit workers")
	}
}
