package circuit

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/linalg"
)

func TestAppendValidation(t *testing.T) {
	c := New(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range qubit accepted")
			}
		}()
		c.X(2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate qubits accepted")
			}
		}()
		c.CX(1, 1)
	}()
}

func TestBuilderChaining(t *testing.T) {
	c := New(3).H(0).CX(0, 1).CX(1, 2).RZ(0.5, 2)
	if c.GateCount() != 4 {
		t.Errorf("gate count %d", c.GateCount())
	}
	if c.ParameterCount() != 1 {
		t.Errorf("param count %d", c.ParameterCount())
	}
}

func TestStats(t *testing.T) {
	c := New(3).H(0).H(1).CX(0, 1).CX(1, 2).X(2).Barrier().Z(0)
	s := c.Stats()
	if s.Total != 6 || s.OneQubit != 4 || s.TwoQubit != 2 {
		t.Errorf("stats %+v", s)
	}
	if s.ByKind[gate.H] != 2 || s.ByKind[gate.CX] != 2 {
		t.Errorf("by-kind %v", s.ByKind)
	}
}

func TestDepth(t *testing.T) {
	// H(0) and H(1) are parallel (depth 1); CX makes depth 2; X(0) depth 3.
	c := New(2).H(0).H(1).CX(0, 1).X(0)
	if d := c.Stats().Depth; d != 3 {
		t.Errorf("depth %d, want 3", d)
	}
	// Barrier forces synchronization.
	c2 := New(2).H(0).Barrier().H(1)
	if d := c2.Stats().Depth; d != 2 {
		t.Errorf("depth with barrier %d, want 2", d)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New(1).RX(0.5, 0)
	c2 := c.Clone()
	c2.Gates[0].Params[0] = 99
	if c.Gates[0].Params[0] != 0.5 {
		t.Error("clone shares parameter storage")
	}
}

func TestComposeWidthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("compose with wider circuit accepted")
		}
	}()
	New(1).Compose(New(2).X(1))
}

func TestEmbedGateSingleQubit(t *testing.T) {
	// X on qubit 1 of 2: |00⟩ → |10⟩ (qubit 1 is bit 1, index 2).
	m := EmbedGate(gate.New(gate.X, 1), 2)
	v := make([]complex128, 4)
	v[0] = 1
	out := m.MulVec(v)
	if out[2] != 1 {
		t.Errorf("X⊗I embedding wrong: %v", out)
	}
}

func TestEmbedGateMatchesKron(t *testing.T) {
	// For qubit 0 (low bit) of 2 qubits, embedding of U is I ⊗ U.
	u := gate.New(gate.H, 0).Matrix2()
	got := EmbedGate(gate.New(gate.H, 0), 2)
	want := linalg.Identity(2).Kron(u)
	if !got.Equal(want, 1e-12) {
		t.Error("embedding ≠ I⊗H for qubit 0")
	}
	// For qubit 1 (high bit), it is U ⊗ I.
	got = EmbedGate(gate.New(gate.H, 1), 2)
	want = u.Kron(linalg.Identity(2))
	if !got.Equal(want, 1e-12) {
		t.Error("embedding ≠ H⊗I for qubit 1")
	}
}

func TestEmbedCXBothOrders(t *testing.T) {
	// CX(0,1): control=qubit0(low bit), target=qubit1.
	m := EmbedGate(gate.New(gate.CX, 0, 1), 2)
	// |01⟩ = index 1 (qubit0=1) → target flips → |11⟩ = index 3.
	v := make([]complex128, 4)
	v[1] = 1
	if out := m.MulVec(v); out[3] != 1 {
		t.Errorf("CX(0,1)|01⟩: %v", out)
	}
	// CX(1,0): control=qubit1.
	m = EmbedGate(gate.New(gate.CX, 1, 0), 2)
	v = make([]complex128, 4)
	v[2] = 1 // qubit1=1
	if out := m.MulVec(v); out[3] != 1 {
		t.Errorf("CX(1,0)|10⟩: %v", out)
	}
}

func TestBellCircuitUnitary(t *testing.T) {
	c := New(2).H(0).CX(0, 1)
	u := c.Unitary()
	v := make([]complex128, 4)
	v[0] = 1
	out := u.MulVec(v)
	s := 1 / math.Sqrt2
	if !core.AlmostEqualC(out[0], complex(s, 0), 1e-12) || !core.AlmostEqualC(out[3], complex(s, 0), 1e-12) {
		t.Errorf("Bell state wrong: %v", out)
	}
	if !core.AlmostEqualC(out[1], 0, 1e-12) || !core.AlmostEqualC(out[2], 0, 1e-12) {
		t.Errorf("Bell state has spurious amplitudes: %v", out)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	c := New(3).H(0).CX(0, 1).RZ(0.7, 1).RY(-0.3, 2).CX(1, 2).T(0).SWAP(0, 2)
	inv := c.Inverse()
	prod := inv.Unitary().Mul(c.Unitary())
	if !prod.EqualUpToPhase(linalg.Identity(8), 1e-10) {
		t.Error("C⁻¹·C != I")
	}
}

func TestInversePanicsOnMeasure(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic inverting measurement")
		}
	}()
	New(1).Measure(0).Inverse()
}

func TestStringOutput(t *testing.T) {
	s := New(2).H(0).CX(0, 1).String()
	want := "qreg q[2]\nh q[0]\ncx q[0], q[1]\n"
	if s != want {
		t.Errorf("String() = %q", s)
	}
}
