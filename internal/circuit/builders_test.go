package circuit

import (
	"testing"

	"repro/internal/linalg"
)

// TestEveryBuilderGateSimulates exercises every builder method against the
// dense reference so no gate constructor can silently rot.
func TestEveryBuilderGateSimulates(t *testing.T) {
	c := New(3).
		I(0).X(0).Y(1).Z(2).H(0).S(1).Sdg(1).T(2).Tdg(2).SX(0).
		RX(0.3, 0).RY(-0.4, 1).RZ(0.5, 2).P(0.6, 0).U3(0.1, 0.2, 0.3, 1).
		CX(0, 1).CY(1, 2).CZ(0, 2).CH(2, 0).SWAP(0, 1).ISWAP(1, 2).
		CP(0.7, 0, 1).CRX(0.8, 1, 2).CRY(0.9, 2, 0).CRZ(1.0, 0, 1).
		RXX(1.1, 0, 2).RYY(1.2, 1, 0).RZZ(1.3, 2, 1).
		Barrier()
	u := c.Unitary()
	if !u.IsUnitary(1e-9) {
		t.Fatal("builder circuit unitary broken")
	}
	// Inverse property holds across the whole gate set.
	if !c.Inverse().Unitary().Mul(u).EqualUpToPhase(linalg.Identity(8), 1e-8) {
		t.Fatal("inverse across full gate set broken")
	}
}
