package circuit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/linalg"
)

// Controlled compiles a controlled version of a circuit: every gate fires
// only when the control qubit is |1⟩. The output acts on the same register
// plus the control wire (which must be outside the circuit's range).
// Single-qubit gates become fused controlled 2-qubit blocks; the common
// two-qubit gates lower onto the Toffoli-family synthesis. Gates without a
// controlled form (measurement, reset) are rejected.
//
// This is the building block of Hadamard tests and of textbook QPE over
// arbitrary preparation circuits.
func Controlled(c *Circuit, ctrl int) (*Circuit, error) {
	n := c.NumQubits
	if ctrl < n {
		return nil, fmt.Errorf("%w: control %d overlaps the %d-qubit register", core.ErrInvalidArgument, ctrl, n)
	}
	out := New(ctrl + 1)
	for _, g := range c.Gates {
		switch g.Kind {
		case gate.Barrier, gate.I:
			out.Append(g.Clone())
			continue
		case gate.Measure, gate.Reset:
			return nil, fmt.Errorf("%w: cannot control %v", core.ErrInvalidArgument, g.Kind)
		}
		switch g.Arity() {
		case 1:
			// Controlled-U as a fused 4×4 block: |0⟩⟨0|⊗I + |1⟩⟨1|⊗U with
			// the control as the high local bit.
			u := g.Matrix2()
			m := linalg.Identity(4)
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					m.Set(2+i, 2+j, u.At(i, j))
				}
			}
			out.Append(gate.Gate{Kind: gate.Fused2Q, Qubits: []int{ctrl, g.Qubits[0]}, Matrix: m})
		case 2:
			a, b := g.Qubits[0], g.Qubits[1]
			switch g.Kind {
			case gate.CX:
				out.CCX(ctrl, a, b)
			case gate.CZ:
				out.CCZ(ctrl, a, b)
			case gate.SWAP:
				out.CSWAP(ctrl, a, b)
			case gate.CP:
				out.MCPhase(g.Params[0], []int{ctrl, a}, b)
			case gate.CRZ:
				// CRZ(θ; a→b) = RZ(θ/2)_b · CX_{ab} · RZ(−θ/2)_b · CX_{ab};
				// controlling only the RZ halves keeps identity at ctrl=0
				// (the CX pair cancels) and yields CRZ(θ) at ctrl=1.
				out.CRZ(g.Params[0]/2, ctrl, b)
				out.CX(a, b)
				out.CRZ(-g.Params[0]/2, ctrl, b)
				out.CX(a, b)
			case gate.RZZ:
				// RZZ(θ) = CX(a,b)·RZ(θ,b)·CX(a,b): control the middle RZ
				// (the CX pair is self-inverse when the control is |0⟩ —
				// but CX must also fire unconditionally; controlling only
				// RZ keeps the identity when ctrl=|0⟩).
				out.CX(a, b)
				out.CRZ(g.Params[0], ctrl, b)
				out.CX(a, b)
			default:
				return nil, fmt.Errorf("%w: no controlled form for %v", core.ErrInvalidArgument, g.Kind)
			}
		default:
			return nil, fmt.Errorf("%w: arity %d", core.ErrInvalidArgument, g.Arity())
		}
	}
	return out, nil
}
