// Package circuit provides the quantum-circuit intermediate representation
// shared by the front-end (XACC-style compilation), the transpiler (gate
// fusion, cancellation), and the simulation backends.
//
// Qubit convention: qubit 0 is the least-significant bit of a basis-state
// index. For multi-qubit gates the first listed qubit is the high-order bit
// of the gate's local sub-index (matching gate.Matrix4).
package circuit

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/gate"
)

// Circuit is an ordered list of gates over a fixed-width register.
type Circuit struct {
	NumQubits int
	Gates     []gate.Gate
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit {
	if n < 0 {
		panic(core.ErrInvalidArgument)
	}
	return &Circuit{NumQubits: n}
}

// Append adds a gate after validating its qubit indices.
func (c *Circuit) Append(g gate.Gate) *Circuit {
	for _, q := range g.Qubits {
		if q < 0 || q >= c.NumQubits {
			panic(core.QubitError(q, c.NumQubits))
		}
	}
	if g.Arity() == 2 && g.Qubits[0] == g.Qubits[1] {
		panic(fmt.Errorf("%w: duplicate qubit %d in two-qubit gate", core.ErrInvalidArgument, g.Qubits[0]))
	}
	c.Gates = append(c.Gates, g)
	return c
}

// Compose appends every gate of o (which must have the same width).
func (c *Circuit) Compose(o *Circuit) *Circuit {
	if o.NumQubits > c.NumQubits {
		panic(core.ErrDimensionMismatch)
	}
	for _, g := range o.Gates {
		c.Append(g.Clone())
	}
	return c
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := New(c.NumQubits)
	out.Gates = make([]gate.Gate, 0, len(c.Gates))
	for _, g := range c.Gates {
		out.Gates = append(out.Gates, g.Clone())
	}
	return out
}

// Inverse returns the adjoint circuit (gates reversed and inverted).
// Measurement/reset markers cause a panic since they are not invertible.
func (c *Circuit) Inverse() *Circuit {
	out := New(c.NumQubits)
	for i := len(c.Gates) - 1; i >= 0; i-- {
		g := c.Gates[i]
		if !g.IsUnitary() {
			if g.Kind == gate.Barrier {
				out.Append(g.Clone())
				continue
			}
			panic(fmt.Errorf("%w: cannot invert %v", core.ErrInvalidArgument, g.Kind))
		}
		out.Append(g.Inverse())
	}
	return out
}

// Builder-style helpers. Each returns the circuit for chaining.

func (c *Circuit) I(q int) *Circuit     { return c.Append(gate.New(gate.I, q)) }
func (c *Circuit) X(q int) *Circuit     { return c.Append(gate.New(gate.X, q)) }
func (c *Circuit) Y(q int) *Circuit     { return c.Append(gate.New(gate.Y, q)) }
func (c *Circuit) Z(q int) *Circuit     { return c.Append(gate.New(gate.Z, q)) }
func (c *Circuit) H(q int) *Circuit     { return c.Append(gate.New(gate.H, q)) }
func (c *Circuit) S(q int) *Circuit     { return c.Append(gate.New(gate.S, q)) }
func (c *Circuit) Sdg(q int) *Circuit   { return c.Append(gate.New(gate.Sdg, q)) }
func (c *Circuit) T(q int) *Circuit     { return c.Append(gate.New(gate.T, q)) }
func (c *Circuit) Tdg(q int) *Circuit   { return c.Append(gate.New(gate.Tdg, q)) }
func (c *Circuit) SX(q int) *Circuit    { return c.Append(gate.New(gate.SX, q)) }
func (c *Circuit) Reset(q int) *Circuit { return c.Append(gate.New(gate.Reset, q)) }

func (c *Circuit) RX(theta float64, q int) *Circuit {
	return c.Append(gate.NewP(gate.RX, []float64{theta}, q))
}
func (c *Circuit) RY(theta float64, q int) *Circuit {
	return c.Append(gate.NewP(gate.RY, []float64{theta}, q))
}
func (c *Circuit) RZ(theta float64, q int) *Circuit {
	return c.Append(gate.NewP(gate.RZ, []float64{theta}, q))
}
func (c *Circuit) P(theta float64, q int) *Circuit {
	return c.Append(gate.NewP(gate.P, []float64{theta}, q))
}
func (c *Circuit) U3(theta, phi, lambda float64, q int) *Circuit {
	return c.Append(gate.NewP(gate.U3, []float64{theta, phi, lambda}, q))
}

func (c *Circuit) CX(ctrl, tgt int) *Circuit { return c.Append(gate.New(gate.CX, ctrl, tgt)) }
func (c *Circuit) CY(ctrl, tgt int) *Circuit { return c.Append(gate.New(gate.CY, ctrl, tgt)) }
func (c *Circuit) CZ(ctrl, tgt int) *Circuit { return c.Append(gate.New(gate.CZ, ctrl, tgt)) }
func (c *Circuit) CH(ctrl, tgt int) *Circuit { return c.Append(gate.New(gate.CH, ctrl, tgt)) }
func (c *Circuit) SWAP(a, b int) *Circuit    { return c.Append(gate.New(gate.SWAP, a, b)) }
func (c *Circuit) ISWAP(a, b int) *Circuit   { return c.Append(gate.New(gate.ISWAP, a, b)) }
func (c *Circuit) Barrier() *Circuit         { return c.Append(gate.New(gate.Barrier)) }
func (c *Circuit) Measure(q int) *Circuit    { return c.Append(gate.New(gate.Measure, q)) }

func (c *Circuit) CP(theta float64, ctrl, tgt int) *Circuit {
	return c.Append(gate.NewP(gate.CP, []float64{theta}, ctrl, tgt))
}
func (c *Circuit) CRX(theta float64, ctrl, tgt int) *Circuit {
	return c.Append(gate.NewP(gate.CRX, []float64{theta}, ctrl, tgt))
}
func (c *Circuit) CRY(theta float64, ctrl, tgt int) *Circuit {
	return c.Append(gate.NewP(gate.CRY, []float64{theta}, ctrl, tgt))
}
func (c *Circuit) CRZ(theta float64, ctrl, tgt int) *Circuit {
	return c.Append(gate.NewP(gate.CRZ, []float64{theta}, ctrl, tgt))
}
func (c *Circuit) RXX(theta float64, a, b int) *Circuit {
	return c.Append(gate.NewP(gate.RXX, []float64{theta}, a, b))
}
func (c *Circuit) RYY(theta float64, a, b int) *Circuit {
	return c.Append(gate.NewP(gate.RYY, []float64{theta}, a, b))
}
func (c *Circuit) RZZ(theta float64, a, b int) *Circuit {
	return c.Append(gate.NewP(gate.RZZ, []float64{theta}, a, b))
}

// Stats summarizes circuit composition, the quantity tracked throughout
// the paper's evaluation (Figures 1a, 3, 4).
type Stats struct {
	Total    int // unitary gates (markers excluded)
	OneQubit int
	TwoQubit int
	Depth    int
	ByKind   map[gate.Kind]int
}

// Stats computes gate counts and circuit depth. Depth counts unitary gates
// only; barriers separate layers but contribute no depth themselves.
func (c *Circuit) Stats() Stats {
	s := Stats{ByKind: map[gate.Kind]int{}}
	level := make([]int, c.NumQubits)
	maxLevel := 0
	for _, g := range c.Gates {
		if g.Kind == gate.Barrier {
			// Synchronize all qubits.
			top := 0
			for _, l := range level {
				if l > top {
					top = l
				}
			}
			for i := range level {
				level[i] = top
			}
			continue
		}
		if !g.IsUnitary() {
			continue
		}
		s.Total++
		s.ByKind[g.Kind]++
		switch g.Arity() {
		case 1:
			s.OneQubit++
		case 2:
			s.TwoQubit++
		}
		top := 0
		for _, q := range g.Qubits {
			if level[q] > top {
				top = level[q]
			}
		}
		top++
		for _, q := range g.Qubits {
			level[q] = top
		}
		if top > maxLevel {
			maxLevel = top
		}
	}
	s.Depth = maxLevel
	return s
}

// GateCount returns the number of unitary gates.
func (c *Circuit) GateCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.IsUnitary() {
			n++
		}
	}
	return n
}

// ParameterCount returns the number of scalar rotation parameters.
func (c *Circuit) ParameterCount() int {
	n := 0
	for _, g := range c.Gates {
		n += len(g.Params)
	}
	return n
}

// String renders the circuit one gate per line (QASM-lite body).
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qreg q[%d]\n", c.NumQubits)
	for _, g := range c.Gates {
		b.WriteString(g.String())
		b.WriteByte('\n')
	}
	return b.String()
}
