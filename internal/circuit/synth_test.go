package circuit

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/core"
	"repro/internal/linalg"
)

// permutationMatrix builds the dim×dim unitary of a classical bit map.
func permutationMatrix(dim int, f func(uint64) uint64) *linalg.Matrix {
	m := linalg.NewMatrix(dim, dim)
	for i := 0; i < dim; i++ {
		m.Set(int(f(uint64(i))), i, 1)
	}
	return m
}

func TestCCXMatchesToffoli(t *testing.T) {
	for _, order := range [][3]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		a, b, tq := order[0], order[1], order[2]
		c := New(3).CCX(a, b, tq)
		want := permutationMatrix(8, func(x uint64) uint64 {
			if core.BitSet(x, a) && core.BitSet(x, b) {
				return core.FlipBit(x, tq)
			}
			return x
		})
		if !c.Unitary().EqualUpToPhase(want, 1e-10) {
			t.Errorf("CCX(%d,%d,%d) wrong", a, b, tq)
		}
	}
}

func TestCCXGateBudget(t *testing.T) {
	c := New(3).CCX(0, 1, 2)
	st := c.Stats()
	if st.TwoQubit != 6 {
		t.Errorf("Toffoli uses %d CNOTs, want 6", st.TwoQubit)
	}
}

func TestCCZSymmetric(t *testing.T) {
	// CCZ must be invariant under any qubit permutation.
	u1 := New(3).CCZ(0, 1, 2).Unitary()
	u2 := New(3).CCZ(2, 0, 1).Unitary()
	if !u1.EqualUpToPhase(u2, 1e-10) {
		t.Error("CCZ not permutation symmetric")
	}
	// Diagonal with a single −1 at |111⟩.
	for i := 0; i < 8; i++ {
		want := complex(1, 0)
		if i == 7 {
			want = -1
		}
		if !core.AlmostEqualC(u1.At(i, i)/u1.At(0, 0), want, 1e-10) {
			t.Errorf("CCZ diag[%d] = %v", i, u1.At(i, i))
		}
	}
}

func TestCSWAPMatchesFredkin(t *testing.T) {
	c := New(3).CSWAP(2, 0, 1)
	want := permutationMatrix(8, func(x uint64) uint64 {
		if !core.BitSet(x, 2) {
			return x
		}
		b0, b1 := core.BitSet(x, 0), core.BitSet(x, 1)
		x = core.SetBit(x, 0, b1)
		return core.SetBit(x, 1, b0)
	})
	if !c.Unitary().EqualUpToPhase(want, 1e-10) {
		t.Error("CSWAP wrong")
	}
}

func TestMCXUpToFourControls(t *testing.T) {
	for k := 0; k <= 4; k++ {
		n := k + 1
		controls := make([]int, k)
		for i := range controls {
			controls[i] = i
		}
		target := k
		c := New(n).MCX(controls, target)
		mask := uint64(1)<<uint(k) - 1
		want := permutationMatrix(1<<uint(n), func(x uint64) uint64 {
			if x&mask == mask {
				return core.FlipBit(x, target)
			}
			return x
		})
		if !c.Unitary().EqualUpToPhase(want, 1e-9) {
			t.Errorf("MCX with %d controls wrong", k)
		}
	}
}

func TestMCPhaseDiagonal(t *testing.T) {
	theta := 0.731
	controls := []int{0, 1, 2}
	c := New(4).MCPhase(theta, controls, 3)
	u := c.Unitary()
	for i := 0; i < 16; i++ {
		want := complex(1, 0)
		if i == 15 { // all qubits |1⟩
			want = cmplx.Exp(complex(0, theta))
		}
		got := u.At(i, i) / u.At(0, 0)
		if !core.AlmostEqualC(got, want, 1e-9) {
			t.Errorf("MCPhase diag[%d] = %v, want %v", i, got, want)
		}
		// Off-diagonals vanish.
		for j := 0; j < 16; j++ {
			if j != i && cmplx.Abs(u.At(i, j)) > 1e-9 {
				t.Fatalf("MCPhase not diagonal at (%d,%d)", i, j)
			}
		}
	}
}

func TestSwapTestCircuit(t *testing.T) {
	// SWAP test: ancilla P(0) = ½(1 + |⟨ψ|φ⟩|²). Build |ψ⟩ = RY(α)|0⟩ and
	// |φ⟩ = RY(β)|0⟩; overlap = cos((α−β)/2).
	for _, angles := range [][2]float64{{0, 0}, {0.8, 0.8}, {0, math.Pi}, {0.4, 1.3}} {
		alpha, beta := angles[0], angles[1]
		// Qubits: 0 = |ψ⟩, 1 = |φ⟩, 2 = ancilla.
		c := New(3).
			RY(alpha, 0).
			RY(beta, 1).
			H(2).
			CSWAP(2, 0, 1).
			H(2)
		u := c.Unitary()
		v := make([]complex128, 8)
		v[0] = 1
		out := u.MulVec(v)
		p0 := 0.0
		for i := 0; i < 4; i++ { // ancilla (bit 2) = 0
			p0 += real(out[i])*real(out[i]) + imag(out[i])*imag(out[i])
		}
		overlap := math.Cos((alpha - beta) / 2)
		want := 0.5 * (1 + overlap*overlap)
		if math.Abs(p0-want) > 1e-9 {
			t.Errorf("α=%v β=%v: P(0) = %v, want %v", alpha, beta, p0, want)
		}
	}
}
