package circuit

import "math"

// Multi-qubit gate synthesis over the native 1- and 2-qubit gate set. The
// simulator (like NWQ-Sim) executes only 1q/2q gates, so three-qubit-and-
// wider primitives are compiled here: the textbook Toffoli decomposition,
// Fredkin via Toffoli, and exact ancilla-free multi-controlled phase/X by
// the standard recursive halving (gate count grows exponentially in the
// control count — intended for small k).

// CCX appends a Toffoli gate (controls a, b; target t) using the standard
// 6-CNOT + 7-T decomposition (Nielsen & Chuang Fig. 4.9).
func (c *Circuit) CCX(a, b, t int) *Circuit {
	c.H(t)
	c.CX(b, t)
	c.Tdg(t)
	c.CX(a, t)
	c.T(t)
	c.CX(b, t)
	c.Tdg(t)
	c.CX(a, t)
	c.T(b)
	c.T(t)
	c.H(t)
	c.CX(a, b)
	c.T(a)
	c.Tdg(b)
	c.CX(a, b)
	return c
}

// CCZ appends a doubly-controlled Z (symmetric in all three qubits).
func (c *Circuit) CCZ(a, b, t int) *Circuit {
	c.H(t)
	c.CCX(a, b, t)
	c.H(t)
	return c
}

// CSWAP appends a controlled-SWAP (Fredkin) gate with control ctrl.
func (c *Circuit) CSWAP(ctrl, x, y int) *Circuit {
	c.CX(y, x)
	c.CCX(ctrl, x, y)
	c.CX(y, x)
	return c
}

// MCPhase appends the multi-controlled phase gate C^k P(θ): the state
// acquires e^{iθ} iff every control and the target are |1⟩. Recursion:
//
//	C^k P(θ) = CP(θ/2; c_k → t) · C^{k−1}X(c₁…c_{k−1} → c_k) ·
//	           CP(−θ/2; c_k → t) · C^{k−1}X(…) · C^{k−1}P(θ/2; c₁… → t)
func (c *Circuit) MCPhase(theta float64, controls []int, target int) *Circuit {
	switch len(controls) {
	case 0:
		c.P(theta, target)
	case 1:
		c.CP(theta, controls[0], target)
	default:
		last := controls[len(controls)-1]
		rest := controls[:len(controls)-1]
		c.CP(theta/2, last, target)
		c.MCX(rest, last)
		c.CP(-theta/2, last, target)
		c.MCX(rest, last)
		c.MCPhase(theta/2, rest, target)
	}
	return c
}

// MCX appends a multi-controlled X: X on target iff all controls are |1⟩.
func (c *Circuit) MCX(controls []int, target int) *Circuit {
	switch len(controls) {
	case 0:
		c.X(target)
	case 1:
		c.CX(controls[0], target)
	case 2:
		c.CCX(controls[0], controls[1], target)
	default:
		c.H(target)
		c.MCPhase(math.Pi, controls, target)
		c.H(target)
	}
	return c
}
