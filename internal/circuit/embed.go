package circuit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/linalg"
)

// EmbedGate expands a 1- or 2-qubit gate into the full 2ⁿ×2ⁿ unitary.
// This is a reference implementation used by tests and the dense-matrix
// cross-checks; the simulation backends never materialize these matrices.
func EmbedGate(g gate.Gate, n int) *linalg.Matrix {
	dim := core.Dim(n)
	m := linalg.NewMatrix(dim, dim)
	switch g.Arity() {
	case 1:
		u := g.Matrix2()
		q := g.Qubits[0]
		for rest := uint64(0); rest < uint64(dim/2); rest++ {
			i0 := core.InsertZeroBit(rest, q)
			i1 := core.FlipBit(i0, q)
			m.Set(int(i0), int(i0), u.At(0, 0))
			m.Set(int(i0), int(i1), u.At(0, 1))
			m.Set(int(i1), int(i0), u.At(1, 0))
			m.Set(int(i1), int(i1), u.At(1, 1))
		}
	case 2:
		u := g.Matrix4()
		a, b := g.Qubits[0], g.Qubits[1] // a = high bit of sub-index
		for rest := uint64(0); rest < uint64(dim/4); rest++ {
			base := core.InsertTwoZeroBits(rest, a, b)
			var idx [4]uint64
			for s := 0; s < 4; s++ {
				x := base
				x = core.SetBit(x, a, s&2 != 0)
				x = core.SetBit(x, b, s&1 != 0)
				idx[s] = x
			}
			for r := 0; r < 4; r++ {
				for col := 0; col < 4; col++ {
					if v := u.At(r, col); v != 0 {
						m.Set(int(idx[r]), int(idx[col]), v)
					}
				}
			}
		}
	default:
		panic(fmt.Sprintf("circuit: EmbedGate arity %d", g.Arity()))
	}
	return m
}

// Unitary returns the full unitary of the circuit (unitary gates only;
// barriers are skipped, measurement markers cause a panic). Exponential in
// qubit count — for verification on small circuits only.
func (c *Circuit) Unitary() *linalg.Matrix {
	u := linalg.Identity(core.Dim(c.NumQubits))
	for _, g := range c.Gates {
		if g.Kind == gate.Barrier {
			continue
		}
		if !g.IsUnitary() {
			panic(fmt.Errorf("%w: Unitary() on circuit with %v", core.ErrInvalidArgument, g.Kind))
		}
		u = EmbedGate(g, c.NumQubits).Mul(u)
	}
	return u
}
