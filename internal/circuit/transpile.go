package circuit

import (
	"math"

	"repro/internal/gate"
	"repro/internal/linalg"
)

// Transpiler options. The paper (§4.3) motivates capping fusion at
// two-qubit blocks: a fused k-qubit gate costs 4^k amplitude work, so wide
// fusion destroys the very savings it seeks.
type TranspileOptions struct {
	FuseWidth      int  // 0 = no fusion, 1 = 1-qubit chains, 2 = up to 2-qubit blocks
	CancelInverses bool // remove adjacent gate/inverse pairs
	DropIdentities bool // remove I gates and zero-angle rotations
}

// DefaultTranspileOptions mirrors NWQ-Sim's production configuration.
func DefaultTranspileOptions() TranspileOptions {
	return TranspileOptions{FuseWidth: 2, CancelInverses: true, DropIdentities: true}
}

// Transpile applies the configured optimization passes and returns a new
// circuit. The input circuit is not modified.
func Transpile(c *Circuit, opts TranspileOptions) *Circuit {
	out := c.Clone()
	if opts.DropIdentities {
		out = DropIdentities(out)
	}
	if opts.CancelInverses {
		out = CancelInverses(out)
	}
	switch {
	case opts.FuseWidth >= 2:
		out = Fuse(out, 2)
	case opts.FuseWidth == 1:
		out = Fuse(out, 1)
	}
	return out
}

// DropIdentities removes I gates and (near-)zero-angle single-parameter
// rotations, which arise frequently from ansatz construction with zeroed
// parameters.
func DropIdentities(c *Circuit) *Circuit {
	out := New(c.NumQubits)
	for _, g := range c.Gates {
		if g.Kind == gate.I {
			continue
		}
		if len(g.Params) == 1 && isZeroAngleKind(g.Kind) && math.Abs(g.Params[0]) < 1e-14 {
			continue
		}
		out.Append(g.Clone())
	}
	return out
}

func isZeroAngleKind(k gate.Kind) bool {
	switch k {
	case gate.RX, gate.RY, gate.RZ, gate.P, gate.CP, gate.CRX, gate.CRY, gate.CRZ,
		gate.RXX, gate.RYY, gate.RZZ:
		return true
	}
	return false
}

// CancelInverses removes pairs (g, h) where h immediately follows g on the
// same qubit set (with no intervening gate touching those qubits) and
// h·g = I. It iterates to a fixpoint so that e.g. H X X H fully cancels.
func CancelInverses(c *Circuit) *Circuit {
	gates := make([]gate.Gate, len(c.Gates))
	copy(gates, c.Gates)
	for {
		removed := cancelOnePass(gates, c.NumQubits)
		if removed == nil {
			break
		}
		gates = removed
	}
	out := New(c.NumQubits)
	for _, g := range gates {
		out.Append(g)
	}
	return out
}

// cancelOnePass returns the gate list with one round of cancellations, or
// nil if nothing changed.
func cancelOnePass(gates []gate.Gate, n int) []gate.Gate {
	// lastOn[q] = index into gates of the most recent surviving unitary
	// gate touching q (or -1).
	lastOn := make([]int, n)
	for i := range lastOn {
		lastOn[i] = -1
	}
	dead := make([]bool, len(gates))
	changed := false
	for i, g := range gates {
		if !g.IsUnitary() {
			// Barriers and measurements block cancellation across them.
			for _, q := range g.Qubits {
				lastOn[q] = -1
			}
			if g.Kind == gate.Barrier {
				for q := range lastOn {
					lastOn[q] = -1
				}
			}
			continue
		}
		prev := -1
		blocked := false
		for _, q := range g.Qubits {
			p := lastOn[q]
			if prev == -1 {
				prev = p
			} else if p != prev {
				blocked = true
			}
		}
		if !blocked && prev >= 0 && !dead[prev] && sameQubitSet(gates[prev], g) && isInversePair(gates[prev], g) {
			dead[prev] = true
			dead[i] = true
			changed = true
			// The qubits become "open" again: the gate before prev (if
			// any) is unknown here, so conservatively reset; the next
			// fixpoint round catches newly adjacent pairs.
			for _, q := range g.Qubits {
				lastOn[q] = -1
			}
			continue
		}
		for _, q := range g.Qubits {
			lastOn[q] = i
		}
	}
	if !changed {
		return nil
	}
	out := make([]gate.Gate, 0, len(gates))
	for i, g := range gates {
		if !dead[i] {
			out = append(out, g)
		}
	}
	return out
}

func sameQubitSet(a, b gate.Gate) bool {
	if a.Arity() != b.Arity() {
		return false
	}
	switch a.Arity() {
	case 1:
		return a.Qubits[0] == b.Qubits[0]
	case 2:
		return (a.Qubits[0] == b.Qubits[0] && a.Qubits[1] == b.Qubits[1]) ||
			(a.Qubits[0] == b.Qubits[1] && a.Qubits[1] == b.Qubits[0])
	}
	return false
}

// isInversePair reports whether h·g == I (up to global phase) for gates on
// the same qubit set.
func isInversePair(g, h gate.Gate) bool {
	switch g.Arity() {
	case 1:
		return h.Matrix2().Mul(g.Matrix2()).EqualUpToPhase(linalg.Identity(2), 1e-12)
	case 2:
		gm := g.Matrix4()
		hm := h.Matrix4()
		if g.Qubits[0] != h.Qubits[0] {
			hm = permuteQubits4(hm)
		}
		return hm.Mul(gm).EqualUpToPhase(linalg.Identity(4), 1e-12)
	}
	return false
}

// permuteQubits4 conjugates a 4×4 matrix with SWAP, converting between
// (a,b) and (b,a) qubit orderings.
func permuteQubits4(m *linalg.Matrix) *linalg.Matrix {
	sw := gate.New(gate.SWAP, 0, 1).Matrix4()
	return sw.Mul(m).Mul(sw)
}

// fusionBlock is an in-flight fused unitary over one or two qubits.
// qubits[0] is the high-order bit of the local index.
type fusionBlock struct {
	qubits []int
	mat    *linalg.Matrix
	nGates int // source gates absorbed (for bookkeeping)
}

// Fuse merges adjacent gates into unitary blocks of at most maxWidth
// qubits (1 or 2), the optimization of paper §4.3. Barriers and
// non-unitary markers flush pending blocks and are preserved.
func Fuse(c *Circuit, maxWidth int) *Circuit {
	if maxWidth < 1 {
		maxWidth = 1
	}
	if maxWidth > 2 {
		maxWidth = 2
	}
	out := New(c.NumQubits)
	open := map[int]*fusionBlock{} // qubit → its open block
	var order []*fusionBlock       // flush order

	flushBlock := func(b *fusionBlock) {
		if b == nil {
			return
		}
		for i, ob := range order {
			if ob == b {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
		for _, q := range b.qubits {
			if open[q] == b {
				delete(open, q)
			}
		}
		emitBlock(out, b)
	}
	flushAll := func() {
		for len(order) > 0 {
			flushBlock(order[0])
		}
	}
	newBlock := func(qubits []int, mat *linalg.Matrix, n int) *fusionBlock {
		b := &fusionBlock{qubits: qubits, mat: mat, nGates: n}
		for _, q := range qubits {
			open[q] = b
		}
		order = append(order, b)
		return b
	}

	for _, g := range c.Gates {
		if !g.IsUnitary() {
			if g.Kind == gate.Barrier {
				flushAll()
			} else {
				for _, q := range g.Qubits {
					flushBlock(open[q])
				}
			}
			out.Append(g.Clone())
			continue
		}
		switch g.Arity() {
		case 1:
			q := g.Qubits[0]
			u := g.Matrix2()
			if b, ok := open[q]; ok {
				// Absorb into the existing block.
				if len(b.qubits) == 1 {
					b.mat = u.Mul(b.mat)
				} else {
					b.mat = lift1to2(u, q, b.qubits).Mul(b.mat)
				}
				b.nGates++
			} else {
				newBlock([]int{q}, u, 1)
			}
		case 2:
			if maxWidth < 2 {
				// Two-qubit gates pass through; they still break 1q chains.
				for _, q := range g.Qubits {
					flushBlock(open[q])
				}
				out.Append(g.Clone())
				continue
			}
			a, b := g.Qubits[0], g.Qubits[1]
			u := g.Matrix4()
			ba, bb := open[a], open[b]
			switch {
			case ba != nil && ba == bb && len(ba.qubits) == 2:
				// Same 2q block; align qubit order then multiply.
				if ba.qubits[0] != a {
					u = permuteQubits4(u)
				}
				ba.mat = u.Mul(ba.mat)
				ba.nGates++
			default:
				// Flush any conflicting 2q blocks; absorb compatible 1q
				// blocks into a fresh 2q block.
				if ba != nil && len(ba.qubits) == 2 {
					flushBlock(ba)
					ba = nil
				}
				if bb != nil && len(bb.qubits) == 2 {
					flushBlock(bb)
					bb = nil
				}
				pre := linalg.Identity(4)
				n := 1
				if ba != nil {
					pre = lift1to2(ba.mat, a, []int{a, b}).Mul(pre)
					n += ba.nGates
					removeBlock(&order, open, ba)
				}
				if bb != nil {
					pre = lift1to2(bb.mat, b, []int{a, b}).Mul(pre)
					n += bb.nGates
					removeBlock(&order, open, bb)
				}
				newBlock([]int{a, b}, u.Mul(pre), n)
			}
		default:
			flushAll()
			out.Append(g.Clone())
		}
	}
	flushAll()
	return out
}

// removeBlock drops b from the open map and flush order without emitting.
func removeBlock(order *[]*fusionBlock, open map[int]*fusionBlock, b *fusionBlock) {
	for i, ob := range *order {
		if ob == b {
			*order = append((*order)[:i], (*order)[i+1:]...)
			break
		}
	}
	for _, q := range b.qubits {
		if open[q] == b {
			delete(open, q)
		}
	}
}

// lift1to2 embeds a 2×2 unitary acting on qubit q into the 4×4 space of
// blockQubits (blockQubits[0] = high bit).
func lift1to2(u *linalg.Matrix, q int, blockQubits []int) *linalg.Matrix {
	if blockQubits[0] == q {
		return u.Kron(linalg.Identity(2))
	}
	return linalg.Identity(2).Kron(u)
}

// emitBlock appends a block as a fused gate, collapsing trivial cases.
func emitBlock(out *Circuit, b *fusionBlock) {
	if len(b.qubits) == 1 {
		if b.mat.EqualUpToPhase(linalg.Identity(2), 1e-12) {
			return
		}
		out.Append(gate.Gate{Kind: gate.Fused1Q, Qubits: []int{b.qubits[0]}, Matrix: b.mat})
		return
	}
	if b.mat.EqualUpToPhase(linalg.Identity(4), 1e-12) {
		return
	}
	out.Append(gate.Gate{Kind: gate.Fused2Q, Qubits: append([]int(nil), b.qubits...), Matrix: b.mat})
}
