package circuit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gate"
)

// This file implements connectivity-aware routing onto a linear-chain
// topology (qubits i and i+1 coupled): the qubit-mapping problem of the
// paper's related work (Sabre, Siraichi et al.). Two-qubit gates between
// distant qubits are preceded by SWAP chains that move the operands
// adjacent; the logical→physical mapping evolves as SWAPs are inserted.

// RouteResult is a routed circuit plus its bookkeeping.
type RouteResult struct {
	// Routed is the circuit over physical qubits; every 2-qubit gate acts
	// on neighbouring wires.
	Routed *Circuit
	// FinalPosition[logical] = physical wire holding that logical qubit
	// at the end of the circuit.
	FinalPosition []int
	// SwapsInserted counts routing SWAP gates added.
	SwapsInserted int
}

// RouteLinear maps the circuit onto a nearest-neighbour chain. The
// returned circuit computes P·U where U is the original unitary and P the
// wire permutation described by FinalPosition; use UndoPermutation to
// restore wire order when needed.
func RouteLinear(c *Circuit) (*RouteResult, error) {
	n := c.NumQubits
	pos := make([]int, n)  // logical → physical
	wire := make([]int, n) // physical → logical
	for i := range pos {
		pos[i] = i
		wire[i] = i
	}
	out := New(n)
	swaps := 0

	swapPhys := func(p int) { // swap physical wires p, p+1
		out.SWAP(p, p+1)
		la, lb := wire[p], wire[p+1]
		wire[p], wire[p+1] = lb, la
		pos[la], pos[lb] = p+1, p
		swaps++
	}

	for _, g := range c.Gates {
		switch g.Arity() {
		case 0:
			out.Append(g.Clone())
		case 1:
			ng := g.Clone()
			ng.Qubits[0] = pos[g.Qubits[0]]
			out.Append(ng)
		case 2:
			pa, pb := pos[g.Qubits[0]], pos[g.Qubits[1]]
			// Walk the farther operand toward the nearer one.
			for pa < pb-1 {
				swapPhys(pa)
				pa++
			}
			for pa > pb+1 {
				swapPhys(pa - 1)
				pa--
			}
			ng := g.Clone()
			ng.Qubits[0] = pa
			ng.Qubits[1] = pb
			out.Append(ng)
		default:
			return nil, fmt.Errorf("%w: cannot route %d-qubit gate", core.ErrInvalidArgument, g.Arity())
		}
	}
	return &RouteResult{Routed: out, FinalPosition: pos, SwapsInserted: swaps}, nil
}

// UndoPermutation appends SWAPs restoring logical qubit i to wire i, so
// the total circuit equals the original unitary exactly.
func (r *RouteResult) UndoPermutation() *Circuit {
	c := r.Routed.Clone()
	pos := append([]int(nil), r.FinalPosition...)
	wire := make([]int, len(pos))
	for l, p := range pos {
		wire[p] = l
	}
	// Selection-sort the wires with adjacent swaps.
	for target := 0; target < len(pos); target++ {
		p := pos[target]
		for p > target {
			c.SWAP(p-1, p)
			la, lb := wire[p-1], wire[p]
			wire[p-1], wire[p] = lb, la
			pos[la], pos[lb] = p, p-1
			p--
		}
	}
	return c
}

// IsLinear reports whether every multi-qubit gate in the circuit acts on
// adjacent wires (the routing post-condition).
func IsLinear(c *Circuit) bool {
	for _, g := range c.Gates {
		if g.Arity() == 2 {
			d := g.Qubits[0] - g.Qubits[1]
			if d != 1 && d != -1 {
				return false
			}
		}
	}
	return true
}

// SwapOverhead estimates routing cost without materializing the result:
// the number of SWAPs RouteLinear would insert.
func SwapOverhead(c *Circuit) int {
	n := c.NumQubits
	pos := make([]int, n)
	wire := make([]int, n)
	for i := range pos {
		pos[i] = i
		wire[i] = i
	}
	swaps := 0
	move := func(p int) {
		la, lb := wire[p], wire[p+1]
		wire[p], wire[p+1] = lb, la
		pos[la], pos[lb] = p+1, p
		swaps++
	}
	for _, g := range c.Gates {
		if g.Arity() != 2 {
			continue
		}
		pa, pb := pos[g.Qubits[0]], pos[g.Qubits[1]]
		for pa < pb-1 {
			move(pa)
			pa++
		}
		for pa > pb+1 {
			move(pa - 1)
			pa--
		}
	}
	return swaps
}

// gateTouchesQubit is a small helper used by routing tests.
func gateTouchesQubit(g gate.Gate, q int) bool {
	for _, x := range g.Qubits {
		if x == q {
			return true
		}
	}
	return false
}
