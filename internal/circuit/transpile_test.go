package circuit

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/linalg"
)

// randomCircuit builds a pseudo-random circuit mixing 1q and 2q gates,
// used to property-test transpiler passes for semantic equivalence.
func randomCircuit(n, gates int, seed uint64) *Circuit {
	rng := core.NewRNG(seed)
	c := New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(8) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.X(rng.Intn(n))
		case 2:
			c.T(rng.Intn(n))
		case 3:
			c.RX(rng.Float64()*4-2, rng.Intn(n))
		case 4:
			c.RZ(rng.Float64()*4-2, rng.Intn(n))
		case 5, 6:
			a := rng.Intn(n)
			b := rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.CX(a, b)
		case 7:
			a := rng.Intn(n)
			b := rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.RZZ(rng.Float64()*2, a, b)
		}
	}
	return c
}

func assertEquivalent(t *testing.T, a, b *Circuit, msg string) {
	t.Helper()
	if !a.Unitary().EqualUpToPhase(b.Unitary(), 1e-9) {
		t.Fatalf("%s: circuits not equivalent", msg)
	}
}

func TestFuse1QChain(t *testing.T) {
	c := New(1).H(0).T(0).S(0).X(0)
	f := Fuse(c, 1)
	if f.GateCount() != 1 {
		t.Fatalf("fused to %d gates, want 1", f.GateCount())
	}
	if f.Gates[0].Kind != gate.Fused1Q {
		t.Fatalf("kind %v", f.Gates[0].Kind)
	}
	assertEquivalent(t, c, f, "1q chain")
}

func TestFuse1QChainsAcrossQubits(t *testing.T) {
	c := New(2).H(0).H(1).T(0).S(1)
	f := Fuse(c, 1)
	if f.GateCount() != 2 {
		t.Fatalf("fused to %d gates, want 2", f.GateCount())
	}
	assertEquivalent(t, c, f, "parallel 1q chains")
}

func TestFuse1QBrokenByTwoQubitGate(t *testing.T) {
	c := New(2).H(0).CX(0, 1).H(0)
	f := Fuse(c, 1)
	// H / CX / H cannot merge at width 1.
	if f.GateCount() != 3 {
		t.Fatalf("count %d, want 3", f.GateCount())
	}
	assertEquivalent(t, c, f, "width-1 with CX")
}

func TestFuse2QStaircaseCore(t *testing.T) {
	// CX RZ CX on the same pair collapses into one fused 2q gate.
	c := New(2).CX(0, 1).RZ(0.5, 1).CX(0, 1)
	f := Fuse(c, 2)
	if f.GateCount() != 1 {
		t.Fatalf("count %d, want 1", f.GateCount())
	}
	if f.Gates[0].Kind != gate.Fused2Q {
		t.Fatalf("kind %v", f.Gates[0].Kind)
	}
	assertEquivalent(t, c, f, "CX RZ CX")
}

func TestFuse2QReversedOrder(t *testing.T) {
	// Gates on (0,1) and (1,0) share support and must still fuse correctly.
	c := New(2).CX(0, 1).CX(1, 0).CX(0, 1) // = SWAP
	f := Fuse(c, 2)
	if f.GateCount() != 1 {
		t.Fatalf("count %d, want 1", f.GateCount())
	}
	sw := New(2).SWAP(0, 1)
	assertEquivalent(t, sw, f, "CX sandwich = SWAP")
}

func TestFuseAbsorbs1QInto2Q(t *testing.T) {
	c := New(2).H(0).H(1).CX(0, 1).RZ(1.0, 1).CX(0, 1).H(0).H(1)
	f := Fuse(c, 2)
	if f.GateCount() != 1 {
		t.Fatalf("count %d, want 1", f.GateCount())
	}
	assertEquivalent(t, c, f, "1q absorbed into 2q block")
}

func TestFuseConflictingPairsFlush(t *testing.T) {
	c := New(3).CX(0, 1).CX(1, 2)
	f := Fuse(c, 2)
	if f.GateCount() != 2 {
		t.Fatalf("count %d, want 2 (overlapping pairs cannot merge)", f.GateCount())
	}
	assertEquivalent(t, c, f, "overlapping pairs")
}

func TestFuseBarrierBlocksFusion(t *testing.T) {
	c := New(1).H(0).Barrier().H(0)
	f := Fuse(c, 2)
	// H H would cancel to identity blocks, but the barrier splits them;
	// each side fuses alone to a single H-equivalent block.
	if f.GateCount() != 2 {
		t.Fatalf("count %d, want 2", f.GateCount())
	}
}

func TestFuseDropsIdentityBlocks(t *testing.T) {
	c := New(1).H(0).H(0)
	f := Fuse(c, 2)
	if f.GateCount() != 0 {
		t.Fatalf("H·H should fuse to identity and vanish, got %d gates", f.GateCount())
	}
}

func TestFuseRandomEquivalenceWidth2(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		c := randomCircuit(4, 30, seed)
		f := Fuse(c, 2)
		assertEquivalent(t, c, f, "random width-2")
		if f.GateCount() > c.GateCount() {
			t.Errorf("seed %d: fusion increased gate count %d → %d", seed, c.GateCount(), f.GateCount())
		}
	}
}

func TestFuseRandomEquivalenceWidth1(t *testing.T) {
	for seed := uint64(20); seed <= 28; seed++ {
		c := randomCircuit(4, 30, seed)
		assertEquivalent(t, c, Fuse(c, 1), "random width-1")
	}
}

func TestFusedBlocksAreUnitary(t *testing.T) {
	f := Fuse(randomCircuit(4, 40, 99), 2)
	for _, g := range f.Gates {
		switch g.Kind {
		case gate.Fused1Q:
			if !g.Matrix.IsUnitary(1e-10) {
				t.Error("fused 1q block not unitary")
			}
		case gate.Fused2Q:
			if !g.Matrix.IsUnitary(1e-10) {
				t.Error("fused 2q block not unitary")
			}
		}
	}
}

func TestCancelInversesSimplePairs(t *testing.T) {
	c := New(2).X(0).X(0).H(1).H(1).CX(0, 1).CX(0, 1)
	out := CancelInverses(c)
	if out.GateCount() != 0 {
		t.Fatalf("count %d, want 0: %v", out.GateCount(), out.Gates)
	}
}

func TestCancelInversesNested(t *testing.T) {
	// H X X H → cancels from the inside out via fixpoint iteration.
	c := New(1).H(0).X(0).X(0).H(0)
	out := CancelInverses(c)
	if out.GateCount() != 0 {
		t.Fatalf("count %d, want 0", out.GateCount())
	}
}

func TestCancelInversesRotations(t *testing.T) {
	c := New(1).RZ(0.7, 0).RZ(-0.7, 0)
	if out := CancelInverses(c); out.GateCount() != 0 {
		t.Fatalf("RZ pair not cancelled: %d", out.GateCount())
	}
	c2 := New(1).S(0).Sdg(0)
	if out := CancelInverses(c2); out.GateCount() != 0 {
		t.Fatal("S·Sdg not cancelled")
	}
}

func TestCancelInversesBlockedByInterveningGate(t *testing.T) {
	c := New(2).X(0).CX(0, 1).X(0)
	out := CancelInverses(c)
	if out.GateCount() != 3 {
		t.Fatalf("count %d, want 3 (CX blocks cancellation)", out.GateCount())
	}
}

func TestCancelInversesBlockedByBarrier(t *testing.T) {
	c := New(1).X(0).Barrier().X(0)
	out := CancelInverses(c)
	if out.GateCount() != 2 {
		t.Fatalf("count %d, want 2 (barrier blocks)", out.GateCount())
	}
}

func TestCancelInversesPreservesSemantics(t *testing.T) {
	for seed := uint64(40); seed <= 48; seed++ {
		c := randomCircuit(4, 24, seed)
		assertEquivalent(t, c, CancelInverses(c), "cancel inverses")
	}
}

func TestCancelReversedCX(t *testing.T) {
	// CX(0,1) followed by CX(1,0) does NOT cancel.
	c := New(2).CX(0, 1).CX(1, 0)
	if out := CancelInverses(c); out.GateCount() != 2 {
		t.Fatal("CX(0,1)·CX(1,0) wrongly cancelled")
	}
	// RZZ is symmetric: RZZ(θ;0,1) then RZZ(−θ;1,0) DOES cancel.
	c2 := New(2).RZZ(0.5, 0, 1).RZZ(-0.5, 1, 0)
	if out := CancelInverses(c2); out.GateCount() != 0 {
		t.Fatal("symmetric RZZ pair not cancelled")
	}
}

func TestDropIdentities(t *testing.T) {
	c := New(2).I(0).RX(0, 0).RZ(1e-16, 1).X(1).RY(0.5, 0)
	out := DropIdentities(c)
	if out.GateCount() != 2 {
		t.Fatalf("count %d, want 2", out.GateCount())
	}
}

func TestTranspilePipeline(t *testing.T) {
	for seed := uint64(60); seed <= 66; seed++ {
		c := randomCircuit(4, 30, seed)
		out := Transpile(c, DefaultTranspileOptions())
		assertEquivalent(t, c, out, "full pipeline")
	}
}

func TestTranspileNoFusion(t *testing.T) {
	c := New(1).H(0).T(0)
	out := Transpile(c, TranspileOptions{FuseWidth: 0})
	if out.GateCount() != 2 {
		t.Fatal("no-fusion pipeline altered gates")
	}
}

func TestPermuteQubits4(t *testing.T) {
	// Permuting CX(hi,lo) gives CX(lo,hi).
	cxAB := gate.New(gate.CX, 0, 1).Matrix4()
	cxBA := permuteQubits4(cxAB)
	want := linalg.MatrixFrom(4, 4, []complex128{
		1, 0, 0, 0,
		0, 0, 0, 1,
		0, 0, 1, 0,
		0, 1, 0, 0,
	})
	if !cxBA.Equal(want, 1e-12) {
		t.Errorf("permuted CX wrong:\n%v", cxBA)
	}
}

func TestFusionReductionOnStructuredCircuit(t *testing.T) {
	// A Pauli-exponential-like structure (basis change + CX staircase +
	// RZ + unwind) must fuse to well under the original count — the
	// mechanism behind the paper's Figure 4.
	c := New(4)
	for _, q := range []int{0, 1, 2, 3} {
		c.H(q)
	}
	c.CX(0, 1).CX(1, 2).CX(2, 3).RZ(0.3, 3).CX(2, 3).CX(1, 2).CX(0, 1)
	for _, q := range []int{0, 1, 2, 3} {
		c.H(q)
	}
	f := Fuse(c, 2)
	if f.GateCount() >= c.GateCount() {
		t.Fatalf("no reduction: %d → %d", c.GateCount(), f.GateCount())
	}
	assertEquivalent(t, c, f, "pauli exponential fusion")
}
