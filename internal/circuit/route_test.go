package circuit

import (
	"testing"

	"repro/internal/gate"
)

func TestRouteLinearAdjacentGatesUntouched(t *testing.T) {
	c := New(4).H(0).CX(0, 1).CX(2, 3).CX(1, 2)
	res, err := RouteLinear(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsInserted != 0 {
		t.Errorf("inserted %d swaps for an already-linear circuit", res.SwapsInserted)
	}
	if !IsLinear(res.Routed) {
		t.Error("output not linear")
	}
}

func TestRouteLinearLongRangeGate(t *testing.T) {
	c := New(5).CX(0, 4)
	res, err := RouteLinear(c)
	if err != nil {
		t.Fatal(err)
	}
	if !IsLinear(res.Routed) {
		t.Fatal("output not linear")
	}
	if res.SwapsInserted != 3 {
		t.Errorf("swaps %d, want 3 (distance 4 → 3 moves)", res.SwapsInserted)
	}
}

func TestRouteLinearSemanticsWithUndo(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		c := randomCircuit(5, 20, seed+100)
		res, err := RouteLinear(c)
		if err != nil {
			t.Fatal(err)
		}
		if !IsLinear(res.Routed) {
			t.Fatal("not linear")
		}
		restored := res.UndoPermutation()
		if !restored.Unitary().EqualUpToPhase(c.Unitary(), 1e-9) {
			t.Fatalf("seed %d: routed+undo circuit differs from original", seed)
		}
	}
}

func TestRouteLinearPositionsConsistent(t *testing.T) {
	c := New(4).CX(0, 3).CX(1, 3).CX(0, 2)
	res, err := RouteLinear(c)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range res.FinalPosition {
		if p < 0 || p >= 4 || seen[p] {
			t.Fatalf("FinalPosition not a permutation: %v", res.FinalPosition)
		}
		seen[p] = true
	}
}

func TestRouteLinearPreservesMeasure(t *testing.T) {
	c := New(3).H(0).CX(0, 2).Measure(0)
	res, err := RouteLinear(c)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range res.Routed.Gates {
		if g.Kind == gate.Measure {
			found = true
			// Measurement follows the logical qubit to its physical wire.
			if g.Qubits[0] != res.FinalPosition[0] && !gateTouchesQubit(g, res.FinalPosition[0]) {
				t.Errorf("measure on wire %d, logical 0 at %d", g.Qubits[0], res.FinalPosition[0])
			}
		}
	}
	if !found {
		t.Error("measurement dropped")
	}
}

func TestSwapOverheadMatchesRouter(t *testing.T) {
	for seed := uint64(20); seed <= 24; seed++ {
		c := randomCircuit(6, 25, seed)
		res, err := RouteLinear(c)
		if err != nil {
			t.Fatal(err)
		}
		if est := SwapOverhead(c); est != res.SwapsInserted {
			t.Errorf("seed %d: estimate %d vs actual %d", seed, est, res.SwapsInserted)
		}
	}
}

func TestSwapOverheadGrowsWithRange(t *testing.T) {
	short := New(6).CX(0, 1)
	long := New(6).CX(0, 5)
	if SwapOverhead(long) <= SwapOverhead(short) {
		t.Error("long-range gate should cost more")
	}
}

func TestRouteLinearBarrier(t *testing.T) {
	c := New(3).H(0).Barrier().CX(0, 2)
	res, err := RouteLinear(c)
	if err != nil {
		t.Fatal(err)
	}
	hasBarrier := false
	for _, g := range res.Routed.Gates {
		if g.Kind == gate.Barrier {
			hasBarrier = true
		}
	}
	if !hasBarrier {
		t.Error("barrier dropped")
	}
}
