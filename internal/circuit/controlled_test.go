package circuit

import (
	"math"
	"testing"

	"repro/internal/gate"
	"repro/internal/linalg"
)

// controlledReference builds the exact controlled unitary |0⟩⟨0|⊗I +
// |1⟩⟨1|⊗U with the control as the top qubit.
func controlledReference(c *Circuit, ctrl int) *linalg.Matrix {
	u := c.Unitary()
	dim := u.Rows
	out := linalg.NewMatrix(2*dim, 2*dim)
	for i := 0; i < dim; i++ {
		out.Set(i, i, 1)
		for j := 0; j < dim; j++ {
			out.Set(dim+i, dim+j, u.At(i, j))
		}
	}
	_ = ctrl
	return out
}

func assertControlled(t *testing.T, c *Circuit) {
	t.Helper()
	ctrl := c.NumQubits
	cc, err := Controlled(c, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	got := cc.Unitary()
	want := controlledReference(c, ctrl)
	if !got.EqualUpToPhase(want, 1e-9) {
		t.Fatalf("controlled circuit wrong for:\n%s", c)
	}
}

func TestControlledSingleQubitGates(t *testing.T) {
	assertControlled(t, New(1).H(0))
	assertControlled(t, New(1).RY(0.7, 0).T(0))
	assertControlled(t, New(2).X(0).RZ(0.3, 1))
}

func TestControlledTwoQubitGates(t *testing.T) {
	assertControlled(t, New(2).CX(0, 1))
	assertControlled(t, New(2).CZ(0, 1))
	assertControlled(t, New(2).SWAP(0, 1))
	assertControlled(t, New(2).CP(0.9, 0, 1))
	assertControlled(t, New(2).CRZ(1.3, 0, 1))
	assertControlled(t, New(2).RZZ(0.5, 0, 1))
}

func TestControlledCompositeCircuit(t *testing.T) {
	// A Bell preparation under control: fires only when ctrl = |1⟩.
	assertControlled(t, New(2).H(0).CX(0, 1).RZ(0.4, 1).CX(0, 1).H(0))
}

func TestControlledRejectsBadInput(t *testing.T) {
	if _, err := Controlled(New(2).H(0), 1); err == nil {
		t.Error("overlapping control accepted")
	}
	if _, err := Controlled(New(1).Measure(0), 1); err == nil {
		t.Error("measurement accepted")
	}
	if _, err := Controlled(New(2).ISWAP(0, 1), 2); err == nil {
		t.Error("unsupported 2q kind accepted")
	}
}

func TestControlledPreservesBarrier(t *testing.T) {
	cc, err := Controlled(New(1).H(0).Barrier().H(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range cc.Gates {
		if g.Kind == gate.Barrier {
			found = true
		}
	}
	if !found {
		t.Error("barrier dropped")
	}
}

func TestHadamardTestRealOverlap(t *testing.T) {
	// Hadamard test: ancilla ⟨Z⟩ = Re⟨ψ|U|ψ⟩. Prepare |ψ⟩ = H|0⟩ and
	// U = RZ(θ): Re⟨+|RZ(θ)|+⟩ = cos(θ/2).
	theta := 0.87
	u := New(1).RZ(theta, 0)
	cu, err := Controlled(u, 1)
	if err != nil {
		t.Fatal(err)
	}
	full := New(2).H(0). // prepare |ψ⟩ on qubit 0
				H(1). // ancilla superposition
				Compose(cu)
	full.H(1)
	m := full.Unitary()
	v := make([]complex128, 4)
	v[0] = 1
	out := m.MulVec(v)
	// ⟨Z⟩ on ancilla (qubit 1): P(anc=0) − P(anc=1).
	p0 := cabs2(out[0]) + cabs2(out[1])
	p1 := cabs2(out[2]) + cabs2(out[3])
	want := math.Cos(theta / 2)
	if diff := p0 - p1 - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Hadamard test ⟨Z⟩ = %v, want %v", p0-p1, want)
	}
}

func cabs2(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }

func TestControlledWidthGuard(t *testing.T) {
	c := New(2).H(0)
	cc, err := Controlled(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cc.NumQubits != 6 {
		t.Errorf("width %d, want 6", cc.NumQubits)
	}
}
