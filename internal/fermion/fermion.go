// Package fermion implements second-quantized fermionic operators —
// products of creation/annihilation operators with anticommutation-aware
// normal ordering — and the Jordan–Wigner transform onto Pauli-sum qubit
// operators. It is the bridge between the chemistry layer (molecular
// integrals, downfolding) and the circuit layer (ansatz generation,
// measurement).
package fermion

import (
	"fmt"
	"math/cmplx"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/pauli"
)

// Ladder is a single creation (Dagger=true) or annihilation operator on a
// spin-orbital mode.
type Ladder struct {
	Mode   int
	Dagger bool
}

// String renders "3^" for a_3† and "3" for a_3.
func (l Ladder) String() string {
	if l.Dagger {
		return fmt.Sprintf("%d^", l.Mode)
	}
	return fmt.Sprintf("%d", l.Mode)
}

// Term is a coefficient times an ordered product of ladder operators.
type Term struct {
	Coeff complex128
	Ops   []Ladder
}

// key gives a canonical map key for a ladder product.
func (t Term) key() string {
	var b strings.Builder
	for _, l := range t.Ops {
		b.WriteString(l.String())
		b.WriteByte(' ')
	}
	return b.String()
}

// String renders e.g. "(0.5+0i)·[2^ 0]".
func (t Term) String() string {
	parts := make([]string, len(t.Ops))
	for i, l := range t.Ops {
		parts[i] = l.String()
	}
	return fmt.Sprintf("%v·[%s]", t.Coeff, strings.Join(parts, " "))
}

// Op is a sum of ladder-product terms. The zero value is the zero
// operator.
type Op struct {
	terms map[string]Term
}

// NewOp returns an empty fermionic operator.
func NewOp() *Op { return &Op{terms: map[string]Term{}} }

// Scalar returns c·1.
func Scalar(c complex128) *Op {
	op := NewOp()
	op.AddTerm(Term{Coeff: c})
	return op
}

// OneBody returns a_p† a_q.
func OneBody(p, q int) *Op {
	op := NewOp()
	op.AddTerm(Term{Coeff: 1, Ops: []Ladder{{p, true}, {q, false}}})
	return op
}

// TwoBody returns a_p† a_q† a_r a_s.
func TwoBody(p, q, r, s int) *Op {
	op := NewOp()
	op.AddTerm(Term{Coeff: 1, Ops: []Ladder{{p, true}, {q, true}, {r, false}, {s, false}}})
	return op
}

// Number returns the number operator n_p = a_p† a_p.
func Number(p int) *Op { return OneBody(p, p) }

// AddTerm accumulates a term (merging with an existing identical product).
func (op *Op) AddTerm(t Term) *Op {
	if op.terms == nil {
		op.terms = map[string]Term{}
	}
	if cmplx.Abs(t.Coeff) <= core.CoeffEps {
		return op
	}
	k := t.key()
	if ex, ok := op.terms[k]; ok {
		c := ex.Coeff + t.Coeff
		if cmplx.Abs(c) <= core.CoeffEps {
			delete(op.terms, k)
		} else {
			ex.Coeff = c
			op.terms[k] = ex
		}
	} else {
		cp := Term{Coeff: t.Coeff, Ops: append([]Ladder(nil), t.Ops...)}
		op.terms[k] = cp
	}
	return op
}

// Add accumulates c·o into op and returns op.
func (op *Op) Add(o *Op, c complex128) *Op {
	for _, t := range o.terms {
		op.AddTerm(Term{Coeff: c * t.Coeff, Ops: t.Ops})
	}
	return op
}

// Scale multiplies all coefficients in place.
func (op *Op) Scale(c complex128) *Op {
	if c == 0 {
		op.terms = map[string]Term{}
		return op
	}
	for k, t := range op.terms {
		t.Coeff *= c
		op.terms[k] = t
	}
	return op
}

// Mul returns the operator product op·o (ladder products concatenate).
// Iterates in canonical term order: concatenated products can normalize
// to the same key, and their summation order must not depend on map
// iteration (run-to-run bit stability).
func (op *Op) Mul(o *Op) *Op {
	out := NewOp()
	for _, t1 := range op.Terms() {
		for _, t2 := range o.Terms() {
			ops := make([]Ladder, 0, len(t1.Ops)+len(t2.Ops))
			ops = append(ops, t1.Ops...)
			ops = append(ops, t2.Ops...)
			out.AddTerm(Term{Coeff: t1.Coeff * t2.Coeff, Ops: ops})
		}
	}
	return out
}

// Commutator returns [op, o].
func (op *Op) Commutator(o *Op) *Op {
	out := op.Mul(o)
	out.Add(o.Mul(op), -1)
	return out
}

// Adjoint returns op†: coefficients conjugated, products reversed with
// dagger flags flipped.
func (op *Op) Adjoint() *Op {
	out := NewOp()
	for _, t := range op.terms {
		ops := make([]Ladder, len(t.Ops))
		for i, l := range t.Ops {
			ops[len(t.Ops)-1-i] = Ladder{Mode: l.Mode, Dagger: !l.Dagger}
		}
		out.AddTerm(Term{Coeff: cmplx.Conj(t.Coeff), Ops: ops})
	}
	return out
}

// NumTerms returns the stored term count.
func (op *Op) NumTerms() int { return len(op.terms) }

// Terms returns the term list in deterministic order.
func (op *Op) Terms() []Term {
	out := make([]Term, 0, len(op.terms))
	keys := make([]string, 0, len(op.terms))
	for k := range op.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, op.terms[k])
	}
	return out
}

// Clone deep-copies the operator.
func (op *Op) Clone() *Op {
	out := NewOp()
	for _, t := range op.terms {
		out.AddTerm(t)
	}
	return out
}

// MaxMode returns the highest mode index used, or -1.
func (op *Op) MaxMode() int {
	mx := -1
	for _, t := range op.terms {
		for _, l := range t.Ops {
			if l.Mode > mx {
				mx = l.Mode
			}
		}
	}
	return mx
}

// String renders the operator.
func (op *Op) String() string {
	ts := op.Terms()
	if len(ts) == 0 {
		return "0"
	}
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, " + ")
}

// NormalOrder rewrites the operator with all creation operators to the
// left (descending mode) and annihilation operators to the right
// (ascending mode), applying a_p a_q† = δ_pq − a_q† a_p and
// anticommutation signs. Products with repeated creations (or repeated
// annihilations) of the same mode vanish.
func (op *Op) NormalOrder() *Op {
	out := NewOp()
	queue := op.Terms()
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		idx := firstDisorder(t.Ops)
		if idx < 0 {
			if !vanishes(t.Ops) {
				out.AddTerm(t)
			}
			continue
		}
		a, b := t.Ops[idx], t.Ops[idx+1]
		switch {
		case !a.Dagger && b.Dagger:
			// a_p a_q† = δ_pq − a_q† a_p
			swapped := swapAt(t.Ops, idx)
			queue = append(queue, Term{Coeff: -t.Coeff, Ops: swapped})
			if a.Mode == b.Mode {
				contracted := append(append([]Ladder(nil), t.Ops[:idx]...), t.Ops[idx+2:]...)
				queue = append(queue, Term{Coeff: t.Coeff, Ops: contracted})
			}
		default:
			// Same species out of order: plain anticommutation swap.
			if a.Mode == b.Mode {
				// a_p a_p = 0 and a_p† a_p† = 0.
				continue
			}
			swapped := swapAt(t.Ops, idx)
			queue = append(queue, Term{Coeff: -t.Coeff, Ops: swapped})
		}
	}
	return out
}

// firstDisorder returns the first index where the canonical order is
// violated, or -1 if the product is normal-ordered.
func firstDisorder(ops []Ladder) int {
	for i := 0; i+1 < len(ops); i++ {
		a, b := ops[i], ops[i+1]
		if !a.Dagger && b.Dagger {
			return i
		}
		if a.Dagger && b.Dagger && a.Mode < b.Mode {
			return i
		}
		if !a.Dagger && !b.Dagger && a.Mode > b.Mode {
			return i
		}
	}
	return -1
}

// vanishes reports whether a normal-ordered product contains a repeated
// mode within a species (which squares a fermionic operator to zero).
func vanishes(ops []Ladder) bool {
	for i := 0; i+1 < len(ops); i++ {
		if ops[i] == ops[i+1] {
			return true
		}
	}
	return false
}

func swapAt(ops []Ladder, i int) []Ladder {
	out := append([]Ladder(nil), ops...)
	out[i], out[i+1] = out[i+1], out[i]
	return out
}

// JordanWigner maps the fermionic operator onto qubits:
//
//	a_p† = Z₀…Z_{p−1} · (X_p − iY_p)/2
//	a_p  = Z₀…Z_{p−1} · (X_p + iY_p)/2
//
// Mode p maps to qubit p. Different ladder products transform onto
// overlapping Pauli strings, so the accumulation runs in canonical term
// order — map iteration would make the low-order bits of the summed
// coefficients vary between otherwise identical constructions.
func (op *Op) JordanWigner() *pauli.Op {
	out := pauli.NewOp()
	for _, t := range op.Terms() {
		acc := pauli.Scalar(t.Coeff)
		for _, l := range t.Ops {
			acc = acc.Mul(ladderJW(l))
		}
		out.AddOp(acc, 1)
	}
	return out.Chop(core.CoeffEps)
}

// ladderJW returns the two-term Pauli operator of one ladder operator.
func ladderJW(l Ladder) *pauli.Op {
	zmask := uint64(1)<<uint(l.Mode) - 1
	x := pauli.String{X: 1 << uint(l.Mode), Z: zmask}
	y := pauli.String{X: 1 << uint(l.Mode), Z: zmask | 1<<uint(l.Mode)}
	op := pauli.NewOp()
	op.Add(x, 0.5)
	if l.Dagger {
		op.Add(y, -0.5i)
	} else {
		op.Add(y, 0.5i)
	}
	return op
}
