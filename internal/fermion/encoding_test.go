package fermion

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

func mustEncoding(e *Encoding, err error) *Encoding {
	if err != nil {
		panic(err)
	}
	return e
}

func TestJWEncodingMatchesDirectTransform(t *testing.T) {
	e := mustEncoding(JordanWignerEncoding(4))
	ops := []*Op{
		OneBody(0, 2),
		TwoBody(3, 1, 0, 2),
		Number(1),
		NewOp().AddTerm(Term{Coeff: 0.3 - 0.1i, Ops: []Ladder{{2, true}}}),
	}
	for i, op := range ops {
		viaEncoding, err := e.Transform(op)
		if err != nil {
			t.Fatal(err)
		}
		direct := op.JordanWigner()
		if !viaEncoding.Equal(direct, 1e-12) {
			t.Errorf("op %d: encoding-based JW differs from direct JW", i)
		}
	}
}

func TestBKMatrixKnownForm(t *testing.T) {
	// The 4-mode BK matrix (Seeley–Richard–Love):
	// rows: [1000, 1100, 0010, 1111] (bit j of row i = B_{ij}).
	rows := bkMatrix(4)
	want := []uint64{0b0001, 0b0011, 0b0100, 0b1111}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %04b, want %04b", i, rows[i], want[i])
		}
	}
}

func TestEncodingsAnticommutation(t *testing.T) {
	n := 4
	encs := []*Encoding{
		mustEncoding(JordanWignerEncoding(n)),
		mustEncoding(BravyiKitaevEncoding(n)),
		mustEncoding(ParityEncoding(n)),
	}
	id := linalg.Identity(1 << n)
	zero := linalg.NewMatrix(1<<n, 1<<n)
	for _, e := range encs {
		dense := func(l Ladder) *linalg.Matrix {
			op, err := e.LadderOp(l)
			if err != nil {
				t.Fatal(err)
			}
			return op.ToDense(n)
		}
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				ap := dense(Ladder{p, false})
				aqD := dense(Ladder{q, true})
				anti := ap.Mul(aqD).Add(aqD.Mul(ap))
				want := zero
				if p == q {
					want = id
				}
				if !anti.Equal(want, 1e-10) {
					t.Errorf("%s: {a_%d, a_%d†} wrong", e.Name, p, q)
				}
				aq := dense(Ladder{q, false})
				if !ap.Mul(aq).Add(aq.Mul(ap)).Equal(zero, 1e-10) {
					t.Errorf("%s: {a_%d, a_%d} != 0", e.Name, p, q)
				}
			}
		}
	}
}

func TestEncodingsShareSpectrum(t *testing.T) {
	// A Hermitian fermionic operator must have identical spectra under
	// every valid encoding (they differ by a basis permutation).
	h := NewOp()
	h.Add(Number(0), 0.7)
	h.Add(Number(2), -0.4)
	h.Add(OneBody(0, 1), 0.3)
	h.Add(OneBody(1, 0), 0.3)
	h.Add(TwoBody(0, 1, 1, 0), 0.9)
	n := 3
	var spectra [][]float64
	for _, mk := range []func(int) (*Encoding, error){JordanWignerEncoding, BravyiKitaevEncoding, ParityEncoding} {
		e := mustEncoding(mk(n))
		q, err := e.Transform(h)
		if err != nil {
			t.Fatal(err)
		}
		res, err := linalg.EighJacobi(q.ToDense(n))
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		spectra = append(spectra, res.Values)
	}
	for enc := 1; enc < len(spectra); enc++ {
		for i := range spectra[0] {
			if math.Abs(spectra[enc][i]-spectra[0][i]) > 1e-8 {
				t.Fatalf("encoding %d: eigenvalue %d differs: %v vs %v",
					enc, i, spectra[enc][i], spectra[0][i])
			}
		}
	}
}

func TestBKReducesMaxWeight(t *testing.T) {
	// A long-range hopping term a_0† a_{n−1} has JW weight n (the full
	// parity string) but only O(log n) under BK.
	n := 16
	hop := OneBody(0, n-1)
	hop.Add(OneBody(n-1, 0), 1)
	jw := mustEncoding(JordanWignerEncoding(n))
	bk := mustEncoding(BravyiKitaevEncoding(n))
	qJW, err := jw.Transform(hop)
	if err != nil {
		t.Fatal(err)
	}
	qBK, err := bk.Transform(hop)
	if err != nil {
		t.Fatal(err)
	}
	if MaxWeight(qBK) >= MaxWeight(qJW) {
		t.Errorf("BK max weight %d not below JW %d", MaxWeight(qBK), MaxWeight(qJW))
	}
	if AverageWeight(qBK) >= AverageWeight(qJW) {
		t.Errorf("BK avg weight %v not below JW %v", AverageWeight(qBK), AverageWeight(qJW))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, mk := range []func(int) (*Encoding, error){JordanWignerEncoding, BravyiKitaevEncoding, ParityEncoding} {
		e := mustEncoding(mk(6))
		for occ := uint64(0); occ < 64; occ++ {
			if got := e.DecodeOccupation(e.EncodeOccupation(occ)); got != occ {
				t.Fatalf("%s: roundtrip %b → %b", e.Name, occ, got)
			}
		}
	}
}

func TestEncodingNumberOperatorDiagonal(t *testing.T) {
	// n_p is diagonal in any linear encoding; its eigenvalue on encoded
	// basis state B·occ must equal occupation bit p.
	e := mustEncoding(BravyiKitaevEncoding(4))
	for p := 0; p < 4; p++ {
		q, err := e.Transform(Number(p))
		if err != nil {
			t.Fatal(err)
		}
		d := q.ToDense(4)
		for occ := uint64(0); occ < 16; occ++ {
			enc := e.EncodeOccupation(occ)
			want := float64(occ >> uint(p) & 1)
			if math.Abs(real(d.At(int(enc), int(enc)))-want) > 1e-10 {
				t.Fatalf("n_%d on occ %04b: %v, want %v", p, occ, d.At(int(enc), int(enc)), want)
			}
		}
	}
}

func TestInvertGF2Errors(t *testing.T) {
	if _, err := invertGF2([]uint64{1, 1}); err == nil {
		t.Error("singular matrix inverted")
	}
}

func TestEncodingValidation(t *testing.T) {
	if _, err := BravyiKitaevEncoding(0); err == nil {
		t.Error("zero modes accepted")
	}
	e := mustEncoding(JordanWignerEncoding(2))
	if _, err := e.LadderOp(Ladder{Mode: 5}); err == nil {
		t.Error("out-of-range mode accepted")
	}
	if _, err := e.Transform(Number(3)); err == nil {
		t.Error("wide operator accepted")
	}
}

func TestWeightHelpers(t *testing.T) {
	op := Number(0).JordanWigner() // ½I − ½Z₀
	if AverageWeight(op) != 1 {
		t.Errorf("avg weight %v", AverageWeight(op))
	}
	if MaxWeight(op) != 1 {
		t.Errorf("max weight %v", MaxWeight(op))
	}
	if AverageWeight(Scalar(1).JordanWigner()) != 0 {
		t.Error("scalar weight")
	}
}

func TestEncodingAccessors(t *testing.T) {
	e := mustEncoding(BravyiKitaevEncoding(4))
	if e.NumModes() != 4 || e.Name != "bravyi-kitaev" {
		t.Error("accessors wrong")
	}
}
