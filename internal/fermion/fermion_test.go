package fermion

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/pauli"
)

// jwDense materializes a fermionic operator as a dense matrix on n qubits
// via Jordan–Wigner.
func jwDense(op *Op, n int) *linalg.Matrix {
	return op.JordanWigner().ToDense(n)
}

func TestJWSingleModeMatrices(t *testing.T) {
	// On one mode: a = [[0,1],[0,0]] in the (|0⟩,|1⟩) basis.
	a := NewOp().AddTerm(Term{Coeff: 1, Ops: []Ladder{{0, false}}})
	m := jwDense(a, 1)
	want := linalg.MatrixFrom(2, 2, []complex128{0, 1, 0, 0})
	if !m.Equal(want, 1e-12) {
		t.Errorf("a matrix:\n%v", m)
	}
	ad := NewOp().AddTerm(Term{Coeff: 1, Ops: []Ladder{{0, true}}})
	md := jwDense(ad, 1)
	if !md.Equal(want.Adjoint(), 1e-12) {
		t.Errorf("a† matrix:\n%v", md)
	}
}

func TestJWAnticommutationRelations(t *testing.T) {
	n := 3
	ladder := func(p int, dag bool) *Op {
		return NewOp().AddTerm(Term{Coeff: 1, Ops: []Ladder{{p, dag}}})
	}
	anti := func(A, B *Op) *linalg.Matrix {
		da, db := jwDense(A, n), jwDense(B, n)
		return da.Mul(db).Add(db.Mul(da))
	}
	id := linalg.Identity(1 << n)
	zero := linalg.NewMatrix(1<<n, 1<<n)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			// {a_p, a_q†} = δ_pq
			got := anti(ladder(p, false), ladder(q, true))
			want := zero
			if p == q {
				want = id
			}
			if !got.Equal(want, 1e-12) {
				t.Errorf("{a_%d, a_%d†} wrong", p, q)
			}
			// {a_p, a_q} = 0
			if !anti(ladder(p, false), ladder(q, false)).Equal(zero, 1e-12) {
				t.Errorf("{a_%d, a_%d} != 0", p, q)
			}
		}
	}
}

func TestNumberOperatorSpectrum(t *testing.T) {
	// n_0 + n_1 on 2 modes has eigenvalues equal to set-bit counts.
	op := NewOp().Add(Number(0), 1).Add(Number(1), 1)
	m := jwDense(op, 2)
	for i := 0; i < 4; i++ {
		popcount := float64((i & 1) + (i >> 1 & 1))
		if math.Abs(real(m.At(i, i))-popcount) > 1e-12 {
			t.Errorf("diag %d = %v, want %v", i, m.At(i, i), popcount)
		}
	}
}

func TestNormalOrderPreservesOperator(t *testing.T) {
	// Normal ordering is algebraically neutral: JW matrices must match.
	cases := []*Op{
		NewOp().AddTerm(Term{Coeff: 1, Ops: []Ladder{{0, false}, {0, true}}}),
		NewOp().AddTerm(Term{Coeff: 1, Ops: []Ladder{{0, false}, {1, true}, {2, false}}}),
		NewOp().AddTerm(Term{Coeff: 0.5 - 0.25i, Ops: []Ladder{{2, false}, {0, false}, {1, true}, {2, true}}}),
		TwoBody(0, 1, 1, 0),
		NewOp().AddTerm(Term{Coeff: 1, Ops: []Ladder{{1, false}, {0, false}, {0, true}, {1, true}}}),
	}
	for i, op := range cases {
		no := op.NormalOrder()
		if !jwDense(op, 3).Equal(jwDense(no, 3), 1e-10) {
			t.Errorf("case %d: normal ordering changed the operator\nbefore: %v\nafter: %v", i, op, no)
		}
		// Verify result is actually normal-ordered.
		for _, term := range no.Terms() {
			if firstDisorder(term.Ops) >= 0 {
				t.Errorf("case %d: term %v not normal ordered", i, term)
			}
		}
	}
}

func TestNormalOrderCanonicalExample(t *testing.T) {
	// a_0 a_0† = 1 − a_0† a_0.
	op := NewOp().AddTerm(Term{Coeff: 1, Ops: []Ladder{{0, false}, {0, true}}})
	no := op.NormalOrder()
	if no.NumTerms() != 2 {
		t.Fatalf("terms: %v", no)
	}
	var sawScalar, sawNumber bool
	for _, term := range no.Terms() {
		switch len(term.Ops) {
		case 0:
			sawScalar = term.Coeff == 1
		case 2:
			sawNumber = term.Coeff == -1 && term.Ops[0].Dagger && !term.Ops[1].Dagger
		}
	}
	if !sawScalar || !sawNumber {
		t.Errorf("wrong normal form: %v", no)
	}
}

func TestNilpotency(t *testing.T) {
	// a_0† a_0† = 0.
	op := NewOp().AddTerm(Term{Coeff: 1, Ops: []Ladder{{0, true}, {0, true}}})
	if no := op.NormalOrder(); no.NumTerms() != 0 {
		t.Errorf("(a†)² should vanish: %v", no)
	}
}

func TestAdjointMatchesMatrixAdjoint(t *testing.T) {
	op := NewOp().
		AddTerm(Term{Coeff: 0.3 + 0.4i, Ops: []Ladder{{1, true}, {0, false}}}).
		AddTerm(Term{Coeff: -0.9, Ops: []Ladder{{2, true}, {1, true}, {0, false}, {2, false}}})
	if !jwDense(op.Adjoint(), 3).Equal(jwDense(op, 3).Adjoint(), 1e-12) {
		t.Error("adjoint wrong")
	}
}

func TestAdjointInvolution(t *testing.T) {
	op := NewOp().AddTerm(Term{Coeff: 1i, Ops: []Ladder{{0, true}, {1, false}}})
	if !jwDense(op.Adjoint().Adjoint(), 2).Equal(jwDense(op, 2), 1e-12) {
		t.Error("(op†)† != op")
	}
}

func TestMulMatchesDense(t *testing.T) {
	a := OneBody(0, 1)
	b := OneBody(1, 0)
	got := jwDense(a.Mul(b), 2)
	want := jwDense(a, 2).Mul(jwDense(b, 2))
	if !got.Equal(want, 1e-12) {
		t.Error("fermionic product wrong under JW")
	}
}

func TestCommutatorMatchesDense(t *testing.T) {
	a := OneBody(0, 1).Add(OneBody(1, 0), 1)
	b := Number(0)
	got := jwDense(a.Commutator(b), 2)
	da, db := jwDense(a, 2), jwDense(b, 2)
	want := da.Mul(db).Sub(db.Mul(da))
	if !got.Equal(want, 1e-12) {
		t.Error("commutator wrong under JW")
	}
}

func TestHoppingTermJW(t *testing.T) {
	// a_0† a_1 + a_1† a_0 --JW--> (X0X1 + Y0Y1)/2.
	op := OneBody(0, 1).Add(OneBody(1, 0), 1)
	q := op.JordanWigner()
	want := pauli.NewOp().
		Add(pauli.MustParse("XX"), 0.5).
		Add(pauli.MustParse("YY"), 0.5)
	if !q.Equal(want, 1e-12) {
		t.Errorf("hopping JW: %v", q)
	}
}

func TestNumberOperatorJW(t *testing.T) {
	// n_p --JW--> (I − Z_p)/2.
	q := Number(1).JordanWigner()
	want := pauli.NewOp().
		Add(pauli.Identity, 0.5).
		Add(pauli.MustParse("IZ"), -0.5)
	if !q.Equal(want, 1e-12) {
		t.Errorf("number JW: %v", q)
	}
}

func TestJWStringsIncludeParity(t *testing.T) {
	// a_2 acting past modes 0,1 must carry Z0 Z1 strings.
	q := NewOp().AddTerm(Term{Coeff: 1, Ops: []Ladder{{2, false}}}).JordanWigner()
	for _, term := range q.Terms() {
		if term.P.At(0) != 'Z' || term.P.At(1) != 'Z' {
			t.Errorf("missing parity string: %s", term.P.Label(3))
		}
	}
}

func TestScaleAndScalar(t *testing.T) {
	op := Scalar(2)
	op.Scale(3)
	if len(op.Terms()) != 1 || op.Terms()[0].Coeff != 6 {
		t.Error("scalar/scale wrong")
	}
	op.Scale(0)
	if op.NumTerms() != 0 {
		t.Error("scale(0)")
	}
}

func TestMaxMode(t *testing.T) {
	if TwoBody(0, 3, 2, 1).MaxMode() != 3 {
		t.Error("max mode")
	}
	if Scalar(1).MaxMode() != -1 {
		t.Error("scalar max mode")
	}
}

func TestAddTermMerging(t *testing.T) {
	op := NewOp()
	op.AddTerm(Term{Coeff: 1, Ops: []Ladder{{0, true}}})
	op.AddTerm(Term{Coeff: -1, Ops: []Ladder{{0, true}}})
	if op.NumTerms() != 0 {
		t.Error("terms did not cancel")
	}
}

func TestTermStringAndOpString(t *testing.T) {
	op := OneBody(1, 0)
	if op.String() == "0" || len(op.String()) == 0 {
		t.Error("string rendering")
	}
	if Scalar(0).String() != "0" {
		t.Error("zero op string")
	}
}

func TestNormalOrderPreservesJWProperty(t *testing.T) {
	// Property: for random ladder products, normal ordering never changes
	// the operator (checked through the JW matrix on 3 modes).
	f := func(modes [4]uint8, daggers uint8, cr, ci int8) bool {
		ops := make([]Ladder, 0, 4)
		for i, m := range modes {
			ops = append(ops, Ladder{Mode: int(m % 3), Dagger: daggers>>uint(i)&1 == 1})
		}
		coeff := complex(float64(cr)/16, float64(ci)/16)
		if coeff == 0 {
			coeff = 1
		}
		op := NewOp().AddTerm(Term{Coeff: coeff, Ops: ops})
		return jwDense(op, 3).Equal(jwDense(op.NormalOrder(), 3), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAdjointPropertyRandom(t *testing.T) {
	// (c·T)† has conjugated coefficient and reversed/flipped ladder ops —
	// verified against matrix adjoints for random products.
	f := func(modes [3]uint8, daggers uint8, cr, ci int8) bool {
		ops := make([]Ladder, 0, 3)
		for i, m := range modes {
			ops = append(ops, Ladder{Mode: int(m % 3), Dagger: daggers>>uint(i)&1 == 1})
		}
		op := NewOp().AddTerm(Term{Coeff: complex(float64(cr)/8, float64(ci)/8) + 1, Ops: ops})
		return jwDense(op.Adjoint(), 3).Equal(jwDense(op, 3).Adjoint(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
