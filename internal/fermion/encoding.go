package fermion

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/pauli"
)

// Encoding is a linear fermion-to-qubit encoding defined by an invertible
// binary matrix B: the qubit state is q = B·n (mod 2) where n is the
// occupation vector. Jordan–Wigner (B = I), the parity encoding (B = lower
// triangular ones), and Bravyi–Kitaev (B = the binary-tree matrix of
// Seeley–Richard–Love) are all instances; ladder operators become
//
//	a_j  = X_{U(j)} · Z_{P(j)} · (I − Z_{F(j)})/2
//	a_j† = X_{U(j)} · Z_{P(j)} · (I + Z_{F(j)})/2
//
// with U(j) the qubits storing bit j (column j of B), F(j) the qubits
// whose parity recovers occupation j (row j of B⁻¹), and P(j) the qubits
// encoding the parity of modes below j.
type Encoding struct {
	Name string
	n    int
	b    []uint64 // b[i] = row i of B (bit j set ⇔ B_{ij} = 1)
	binv []uint64 // rows of B⁻¹
	// Precomputed per-mode Pauli masks.
	update []uint64 // X mask per mode
	parity []uint64 // Z mask for parity of modes < j
	flip   []uint64 // Z mask recovering occupation j
}

// NumModes returns the mode/qubit count.
func (e *Encoding) NumModes() int { return e.n }

// newEncoding finalizes an encoding from its matrix rows.
func newEncoding(name string, rows []uint64) (*Encoding, error) {
	n := len(rows)
	if n == 0 || n > 64 {
		return nil, fmt.Errorf("%w: %d modes", core.ErrInvalidArgument, n)
	}
	inv, err := invertGF2(rows)
	if err != nil {
		return nil, fmt.Errorf("encoding %s: %w", name, err)
	}
	e := &Encoding{Name: name, n: n, b: rows, binv: inv}
	e.update = make([]uint64, n)
	e.parity = make([]uint64, n)
	e.flip = make([]uint64, n)
	for j := 0; j < n; j++ {
		// U(j): column j of B.
		var u uint64
		for i := 0; i < n; i++ {
			if rows[i]>>uint(j)&1 == 1 {
				u |= 1 << uint(i)
			}
		}
		e.update[j] = u
		// F(j): row j of B⁻¹.
		e.flip[j] = inv[j]
		// P(j): XOR of rows < j of B⁻¹ (parity of those occupations).
		var p uint64
		for k := 0; k < j; k++ {
			p ^= inv[k]
		}
		e.parity[j] = p
	}
	return e, nil
}

// invertGF2 inverts a binary matrix (rows as bitmasks) over GF(2).
func invertGF2(rows []uint64) ([]uint64, error) {
	n := len(rows)
	a := append([]uint64(nil), rows...)
	inv := make([]uint64, n)
	for i := range inv {
		inv[i] = 1 << uint(i)
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if a[r]>>uint(col)&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("%w: singular encoding matrix", core.ErrInvalidArgument)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		for r := 0; r < n; r++ {
			if r != col && a[r]>>uint(col)&1 == 1 {
				a[r] ^= a[col]
				inv[r] ^= inv[col]
			}
		}
	}
	return inv, nil
}

// JordanWignerEncoding returns B = I (the default mapping used elsewhere).
func JordanWignerEncoding(n int) (*Encoding, error) {
	rows := make([]uint64, n)
	for i := range rows {
		rows[i] = 1 << uint(i)
	}
	return newEncoding("jordan-wigner", rows)
}

// ParityEncoding returns the lower-triangular-of-ones matrix: qubit i
// stores the parity of occupations 0…i.
func ParityEncoding(n int) (*Encoding, error) {
	rows := make([]uint64, n)
	for i := range rows {
		rows[i] = (uint64(1) << uint(i+1)) - 1
	}
	return newEncoding("parity", rows)
}

// BravyiKitaevEncoding returns the Seeley–Richard–Love binary-tree matrix
// (top-left n×n block of the power-of-two construction).
func BravyiKitaevEncoding(n int) (*Encoding, error) {
	if n <= 0 || n > 64 {
		return nil, core.ErrInvalidArgument
	}
	size := 1
	for size < n {
		size *= 2
	}
	full := bkMatrix(size)
	rows := make([]uint64, n)
	mask := uint64(1)<<uint(n) - 1
	if n == 64 {
		mask = ^uint64(0)
	}
	for i := 0; i < n; i++ {
		rows[i] = full[i] & mask
	}
	return newEncoding("bravyi-kitaev", rows)
}

// bkMatrix builds the 2^k-dimensional BK matrix recursively: the doubled
// matrix repeats the block on both diagonal positions and fills the last
// row's left half with ones (the top qubit stores the total parity of the
// lower half).
func bkMatrix(size int) []uint64 {
	if size == 1 {
		return []uint64{1}
	}
	half := bkMatrix(size / 2)
	rows := make([]uint64, size)
	for i := 0; i < size/2; i++ {
		rows[i] = half[i]
		rows[size/2+i] = half[i] << uint(size/2)
	}
	// Last row: parity of everything below (fill the low half with ones).
	rows[size-1] |= uint64(1)<<uint(size/2) - 1
	return rows
}

// LadderOp maps one ladder operator to its Pauli form under the encoding.
func (e *Encoding) LadderOp(l Ladder) (*pauli.Op, error) {
	if l.Mode < 0 || l.Mode >= e.n {
		return nil, core.QubitError(l.Mode, e.n)
	}
	j := l.Mode
	xPart := pauli.NewOp().Add(pauli.String{X: e.update[j]}, 1)
	zParity := pauli.NewOp().Add(pauli.String{Z: e.parity[j]}, 1)
	// Projector (I ∓ Z_{F(j)})/2: − for annihilation (needs n_j = 1),
	// + for creation (needs n_j = 0).
	sign := complex(-0.5, 0)
	if l.Dagger {
		sign = 0.5
	}
	proj := pauli.NewOp().Add(pauli.Identity, 0.5).Add(pauli.String{Z: e.flip[j]}, sign)
	return xPart.Mul(zParity).Mul(proj), nil
}

// Transform maps a fermionic operator to qubits under the encoding.
func (e *Encoding) Transform(op *Op) (*pauli.Op, error) {
	if op.MaxMode() >= e.n {
		return nil, core.QubitError(op.MaxMode(), e.n)
	}
	out := pauli.NewOp()
	for _, t := range op.Terms() {
		acc := pauli.Scalar(t.Coeff)
		for _, l := range t.Ops {
			lp, err := e.LadderOp(l)
			if err != nil {
				return nil, err
			}
			acc = acc.Mul(lp)
		}
		out.AddOp(acc, 1)
	}
	return out.Chop(core.CoeffEps), nil
}

// AverageWeight reports the mean Pauli weight of an operator's strings —
// the locality metric by which Bravyi–Kitaev (O(log n) weights) improves
// on Jordan–Wigner (O(n) parity strings).
func AverageWeight(op *pauli.Op) float64 {
	terms := op.Terms()
	if len(terms) == 0 {
		return 0
	}
	total := 0
	count := 0
	for _, t := range terms {
		if t.P.IsIdentity() {
			continue
		}
		total += t.P.Weight()
		count++
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// MaxWeight reports the largest Pauli weight in the operator.
func MaxWeight(op *pauli.Op) int {
	mx := 0
	for _, t := range op.Terms() {
		if w := t.P.Weight(); w > mx {
			mx = w
		}
	}
	return mx
}

// EncodeOccupation maps an occupation bitmask to the encoded qubit basis
// index (q = B·n mod 2).
func (e *Encoding) EncodeOccupation(occ uint64) uint64 {
	var q uint64
	for i := 0; i < e.n; i++ {
		if bits.OnesCount64(e.b[i]&occ)%2 == 1 {
			q |= 1 << uint(i)
		}
	}
	return q
}

// DecodeOccupation inverts EncodeOccupation.
func (e *Encoding) DecodeOccupation(q uint64) uint64 {
	var occ uint64
	for i := 0; i < e.n; i++ {
		if bits.OnesCount64(e.binv[i]&q)%2 == 1 {
			occ |= 1 << uint(i)
		}
	}
	return occ
}
