// Package gate defines the quantum gate set natively supported by the
// simulator (mirroring NWQ-Sim's native single- and two-qubit gate model),
// including parametric rotations and fused unitary gates produced by the
// transpiler.
package gate

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"

	"repro/internal/core"
	"repro/internal/linalg"
)

// Kind enumerates the gate vocabulary.
type Kind int

// Supported gate kinds. Fused1Q/Fused2Q carry explicit matrices produced by
// the gate-fusion pass (paper §4.3); everything else has a fixed or
// parameter-derived matrix.
const (
	I Kind = iota
	X
	Y
	Z
	H
	S
	Sdg
	T
	Tdg
	SX // sqrt-X
	RX
	RY
	RZ
	P  // phase gate diag(1, e^{iθ})
	U3 // generic single-qubit rotation U3(θ,φ,λ)
	CX
	CY
	CZ
	CH
	CP  // controlled phase
	CRX // controlled RX
	CRY
	CRZ
	SWAP
	ISWAP
	RXX // exp(-iθ XX/2)
	RYY
	RZZ
	Fused1Q
	Fused2Q
	Measure // computational-basis measurement marker
	Reset
	Barrier // optimization fence
)

var kindNames = map[Kind]string{
	I: "i", X: "x", Y: "y", Z: "z", H: "h", S: "s", Sdg: "sdg", T: "t",
	Tdg: "tdg", SX: "sx", RX: "rx", RY: "ry", RZ: "rz", P: "p", U3: "u3",
	CX: "cx", CY: "cy", CZ: "cz", CH: "ch", CP: "cp", CRX: "crx",
	CRY: "cry", CRZ: "crz", SWAP: "swap", ISWAP: "iswap", RXX: "rxx",
	RYY: "ryy", RZZ: "rzz", Fused1Q: "fused1q", Fused2Q: "fused2q",
	Measure: "measure", Reset: "reset", Barrier: "barrier",
}

// String returns the lower-case mnemonic used by the QASM-lite dialect.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindByName resolves a mnemonic; ok is false for unknown names.
func KindByName(name string) (Kind, bool) {
	for k, s := range kindNames {
		if s == name {
			return k, true
		}
	}
	return I, false
}

// Gate is one operation in a circuit. Qubits[0] is the target for
// single-qubit gates; for controlled gates Qubits[0] is the control and
// Qubits[1] the target (matching OpenQASM argument order). Matrix is only
// set for fused gates.
type Gate struct {
	Kind   Kind
	Qubits []int
	Params []float64
	Matrix *linalg.Matrix // fused gates only; 2×2 or 4×4
}

// New constructs a non-parametric gate.
func New(k Kind, qubits ...int) Gate {
	return Gate{Kind: k, Qubits: qubits}
}

// NewP constructs a parametric gate.
func NewP(k Kind, params []float64, qubits ...int) Gate {
	return Gate{Kind: k, Qubits: qubits, Params: params}
}

// Arity returns the number of qubits the gate acts on.
func (g Gate) Arity() int { return len(g.Qubits) }

// IsUnitary reports whether the gate is a unitary operation (as opposed to
// measurement, reset, or barrier markers).
func (g Gate) IsUnitary() bool {
	switch g.Kind {
	case Measure, Reset, Barrier:
		return false
	}
	return true
}

// IsParametric reports whether the gate carries rotation parameters.
func (g Gate) IsParametric() bool { return len(g.Params) > 0 }

// IsDiagonal reports whether the gate's matrix is diagonal in the
// computational basis (useful for fusion and commutation analysis).
func (g Gate) IsDiagonal() bool {
	switch g.Kind {
	case I, Z, S, Sdg, T, Tdg, RZ, P, CZ, CP, CRZ, RZZ:
		return true
	}
	return false
}

// String renders the gate in QASM-lite form, e.g. "rx(0.500000) q[2]".
func (g Gate) String() string {
	var b strings.Builder
	b.WriteString(g.Kind.String())
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", p)
		}
		b.WriteByte(')')
	}
	for i, q := range g.Qubits {
		if i == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "q[%d]", q)
	}
	return b.String()
}

// Clone returns a deep copy (Params and Qubits are not shared).
func (g Gate) Clone() Gate {
	c := Gate{Kind: g.Kind}
	c.Qubits = append([]int(nil), g.Qubits...)
	c.Params = append([]float64(nil), g.Params...)
	if g.Matrix != nil {
		c.Matrix = g.Matrix.Clone()
	}
	return c
}

// sq2 is 1/√2.
var sq2 = complex(1/math.Sqrt2, 0)

// Matrix2 returns the 2×2 unitary of a single-qubit gate. It panics for
// non-unitary or multi-qubit kinds.
func (g Gate) Matrix2() *linalg.Matrix {
	switch g.Kind {
	case I:
		return linalg.Identity(2)
	case X:
		return linalg.MatrixFrom(2, 2, []complex128{0, 1, 1, 0})
	case Y:
		return linalg.MatrixFrom(2, 2, []complex128{0, -1i, 1i, 0})
	case Z:
		return linalg.MatrixFrom(2, 2, []complex128{1, 0, 0, -1})
	case H:
		return linalg.MatrixFrom(2, 2, []complex128{sq2, sq2, sq2, -sq2})
	case S:
		return linalg.MatrixFrom(2, 2, []complex128{1, 0, 0, 1i})
	case Sdg:
		return linalg.MatrixFrom(2, 2, []complex128{1, 0, 0, -1i})
	case T:
		return linalg.MatrixFrom(2, 2, []complex128{1, 0, 0, cmplx.Exp(1i * math.Pi / 4)})
	case Tdg:
		return linalg.MatrixFrom(2, 2, []complex128{1, 0, 0, cmplx.Exp(-1i * math.Pi / 4)})
	case SX:
		return linalg.MatrixFrom(2, 2, []complex128{
			0.5 + 0.5i, 0.5 - 0.5i,
			0.5 - 0.5i, 0.5 + 0.5i,
		})
	case RX:
		th := g.Params[0] / 2
		c, s := complex(math.Cos(th), 0), complex(0, -math.Sin(th))
		return linalg.MatrixFrom(2, 2, []complex128{c, s, s, c})
	case RY:
		th := g.Params[0] / 2
		c, s := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		return linalg.MatrixFrom(2, 2, []complex128{c, -s, s, c})
	case RZ:
		th := g.Params[0] / 2
		return linalg.MatrixFrom(2, 2, []complex128{
			cmplx.Exp(complex(0, -real(complex(th, 0)))), 0,
			0, cmplx.Exp(complex(0, real(complex(th, 0)))),
		})
	case P:
		return linalg.MatrixFrom(2, 2, []complex128{1, 0, 0, cmplx.Exp(complex(0, g.Params[0]))})
	case U3:
		th, phi, lam := g.Params[0], g.Params[1], g.Params[2]
		c, s := math.Cos(th/2), math.Sin(th/2)
		return linalg.MatrixFrom(2, 2, []complex128{
			complex(c, 0), -cmplx.Exp(complex(0, lam)) * complex(s, 0),
			cmplx.Exp(complex(0, phi)) * complex(s, 0), cmplx.Exp(complex(0, phi+lam)) * complex(c, 0),
		})
	case Fused1Q:
		if g.Matrix == nil || g.Matrix.Rows != 2 {
			panic(fmt.Errorf("%w: fused1q without 2x2 matrix", core.ErrInvalidArgument))
		}
		return g.Matrix.Clone()
	}
	panic(fmt.Errorf("%w: Matrix2 on %v", core.ErrInvalidArgument, g.Kind))
}

// Matrix4 returns the 4×4 unitary of a two-qubit gate in the basis
// |q0 q1⟩ = |control target⟩ ordered (00, 01, 10, 11) where the FIRST
// listed qubit is the high-order bit. It panics for other kinds.
func (g Gate) Matrix4() *linalg.Matrix {
	mk := func(d []complex128) *linalg.Matrix { return linalg.MatrixFrom(4, 4, d) }
	ctrl := func(u *linalg.Matrix) *linalg.Matrix {
		m := linalg.Identity(4)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				m.Set(2+i, 2+j, u.At(i, j))
			}
		}
		return m
	}
	switch g.Kind {
	case CX:
		return ctrl(New(X).Matrix2())
	case CY:
		return ctrl(New(Y).Matrix2())
	case CZ:
		return ctrl(New(Z).Matrix2())
	case CH:
		return ctrl(New(H).Matrix2())
	case CP:
		return ctrl(NewP(P, g.Params).Matrix2())
	case CRX:
		return ctrl(NewP(RX, g.Params).Matrix2())
	case CRY:
		return ctrl(NewP(RY, g.Params).Matrix2())
	case CRZ:
		return ctrl(NewP(RZ, g.Params).Matrix2())
	case SWAP:
		return mk([]complex128{
			1, 0, 0, 0,
			0, 0, 1, 0,
			0, 1, 0, 0,
			0, 0, 0, 1,
		})
	case ISWAP:
		return mk([]complex128{
			1, 0, 0, 0,
			0, 0, 1i, 0,
			0, 1i, 0, 0,
			0, 0, 0, 1,
		})
	case RXX:
		th := g.Params[0] / 2
		c, s := complex(math.Cos(th), 0), complex(0, -math.Sin(th))
		return mk([]complex128{
			c, 0, 0, s,
			0, c, s, 0,
			0, s, c, 0,
			s, 0, 0, c,
		})
	case RYY:
		th := g.Params[0] / 2
		c := complex(math.Cos(th), 0)
		s := complex(0, math.Sin(th))
		return mk([]complex128{
			c, 0, 0, s,
			0, c, -s, 0,
			0, -s, c, 0,
			s, 0, 0, c,
		})
	case RZZ:
		th := g.Params[0] / 2
		em := cmplx.Exp(complex(0, -real(complex(th, 0))))
		ep := cmplx.Exp(complex(0, real(complex(th, 0))))
		return mk([]complex128{
			em, 0, 0, 0,
			0, ep, 0, 0,
			0, 0, ep, 0,
			0, 0, 0, em,
		})
	case Fused2Q:
		if g.Matrix == nil || g.Matrix.Rows != 4 {
			panic(fmt.Errorf("%w: fused2q without 4x4 matrix", core.ErrInvalidArgument))
		}
		return g.Matrix.Clone()
	}
	panic(fmt.Errorf("%w: Matrix4 on %v", core.ErrInvalidArgument, g.Kind))
}

// Inverse returns a gate implementing the adjoint unitary.
func (g Gate) Inverse() Gate {
	neg := func() []float64 {
		ps := make([]float64, len(g.Params))
		for i, p := range g.Params {
			ps[i] = -p
		}
		return ps
	}
	switch g.Kind {
	case I, X, Y, Z, H, CX, CY, CZ, CH, SWAP, Barrier:
		return g.Clone()
	case S:
		return New(Sdg, g.Qubits...)
	case Sdg:
		return New(S, g.Qubits...)
	case T:
		return New(Tdg, g.Qubits...)
	case Tdg:
		return New(T, g.Qubits...)
	case SX:
		// SX† = SX·X·Z up to phase; express directly as a fused matrix.
		return Gate{Kind: Fused1Q, Qubits: append([]int(nil), g.Qubits...), Matrix: New(SX).Matrix2().Adjoint()}
	case RX, RY, RZ, P, CP, CRX, CRY, CRZ, RXX, RYY, RZZ:
		return NewP(g.Kind, neg(), g.Qubits...)
	case U3:
		th, phi, lam := g.Params[0], g.Params[1], g.Params[2]
		return NewP(U3, []float64{-th, -lam, -phi}, g.Qubits...)
	case ISWAP:
		return Gate{Kind: Fused2Q, Qubits: append([]int(nil), g.Qubits...), Matrix: New(ISWAP).Matrix4().Adjoint()}
	case Fused1Q, Fused2Q:
		return Gate{Kind: g.Kind, Qubits: append([]int(nil), g.Qubits...), Matrix: g.Matrix.Adjoint()}
	}
	panic(fmt.Errorf("%w: Inverse on %v", core.ErrInvalidArgument, g.Kind))
}
