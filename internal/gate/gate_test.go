package gate

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

var oneQubitKinds = []Kind{I, X, Y, Z, H, S, Sdg, T, Tdg, SX}
var paramOneQubitKinds = []Kind{RX, RY, RZ, P}
var twoQubitKinds = []Kind{CX, CY, CZ, CH, SWAP, ISWAP}
var paramTwoQubitKinds = []Kind{CP, CRX, CRY, CRZ, RXX, RYY, RZZ}

func TestAllFixed1QMatricesUnitary(t *testing.T) {
	for _, k := range oneQubitKinds {
		if !New(k, 0).Matrix2().IsUnitary(1e-12) {
			t.Errorf("%v matrix not unitary", k)
		}
	}
}

func TestAllParam1QMatricesUnitary(t *testing.T) {
	for _, k := range paramOneQubitKinds {
		for _, th := range []float64{0, 0.3, math.Pi, -2.1} {
			if !NewP(k, []float64{th}, 0).Matrix2().IsUnitary(1e-12) {
				t.Errorf("%v(%v) not unitary", k, th)
			}
		}
	}
	if !NewP(U3, []float64{0.4, 1.1, -0.6}, 0).Matrix2().IsUnitary(1e-12) {
		t.Error("U3 not unitary")
	}
}

func TestAll2QMatricesUnitary(t *testing.T) {
	for _, k := range twoQubitKinds {
		if !New(k, 0, 1).Matrix4().IsUnitary(1e-12) {
			t.Errorf("%v not unitary", k)
		}
	}
	for _, k := range paramTwoQubitKinds {
		if !NewP(k, []float64{0.7}, 0, 1).Matrix4().IsUnitary(1e-12) {
			t.Errorf("%v(0.7) not unitary", k)
		}
	}
}

func TestHadamardSquaresToIdentity(t *testing.T) {
	h := New(H, 0).Matrix2()
	if !h.Mul(h).Equal(linalg.Identity(2), 1e-12) {
		t.Error("H² != I")
	}
}

func TestSIsSquareRootOfZ(t *testing.T) {
	s := New(S, 0).Matrix2()
	if !s.Mul(s).Equal(New(Z, 0).Matrix2(), 1e-12) {
		t.Error("S² != Z")
	}
}

func TestTIsSquareRootOfS(t *testing.T) {
	tm := New(T, 0).Matrix2()
	if !tm.Mul(tm).Equal(New(S, 0).Matrix2(), 1e-12) {
		t.Error("T² != S")
	}
}

func TestSXIsSquareRootOfX(t *testing.T) {
	sx := New(SX, 0).Matrix2()
	if !sx.Mul(sx).Equal(New(X, 0).Matrix2(), 1e-12) {
		t.Error("SX² != X")
	}
}

func TestRZAgreesWithPhaseUpToGlobalPhase(t *testing.T) {
	th := 0.913
	rz := NewP(RZ, []float64{th}, 0).Matrix2()
	p := NewP(P, []float64{th}, 0).Matrix2()
	if !rz.EqualUpToPhase(p, 1e-12) {
		t.Error("RZ(θ) should equal P(θ) up to global phase")
	}
}

func TestRotationComposition(t *testing.T) {
	// RX(a)·RX(b) == RX(a+b)
	a, b := 0.37, 1.21
	lhs := NewP(RX, []float64{a}, 0).Matrix2().Mul(NewP(RX, []float64{b}, 0).Matrix2())
	rhs := NewP(RX, []float64{a + b}, 0).Matrix2()
	if !lhs.Equal(rhs, 1e-12) {
		t.Error("RX does not compose additively")
	}
}

func TestU3Decomposition(t *testing.T) {
	// U3(θ,φ,λ) = e^{i(φ+λ)/2} RZ(φ)·RY(θ)·RZ(λ) up to global phase.
	th, phi, lam := 0.81, -0.5, 1.9
	u3 := NewP(U3, []float64{th, phi, lam}, 0).Matrix2()
	rz1 := NewP(RZ, []float64{phi}, 0).Matrix2()
	ry := NewP(RY, []float64{th}, 0).Matrix2()
	rz2 := NewP(RZ, []float64{lam}, 0).Matrix2()
	if !u3.EqualUpToPhase(rz1.Mul(ry).Mul(rz2), 1e-12) {
		t.Error("U3 != RZ·RY·RZ up to phase")
	}
}

func TestCXMatrixAction(t *testing.T) {
	cx := New(CX, 0, 1).Matrix4()
	// Basis convention: first qubit (control) is the high bit.
	// |10⟩ (index 2) → |11⟩ (index 3)
	v := make([]complex128, 4)
	v[2] = 1
	out := cx.MulVec(v)
	if out[3] != 1 || out[2] != 0 {
		t.Errorf("CX|10⟩ = %v", out)
	}
	// |01⟩ (index 1) unchanged.
	v = make([]complex128, 4)
	v[1] = 1
	out = cx.MulVec(v)
	if out[1] != 1 {
		t.Errorf("CX|01⟩ = %v", out)
	}
}

func TestSWAPAction(t *testing.T) {
	sw := New(SWAP, 0, 1).Matrix4()
	v := make([]complex128, 4)
	v[1] = 1 // |01⟩
	out := sw.MulVec(v)
	if out[2] != 1 {
		t.Errorf("SWAP|01⟩ = %v", out)
	}
}

func TestRZZDiagonal(t *testing.T) {
	m := NewP(RZZ, []float64{0.4}, 0, 1).Matrix4()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && m.At(i, j) != 0 {
				t.Fatal("RZZ not diagonal")
			}
		}
	}
	// Diagonal phases: e^{-iθ/2} for even parity, e^{+iθ/2} for odd.
	if real(m.At(0, 0)) != real(m.At(3, 3)) || real(m.At(1, 1)) != real(m.At(2, 2)) {
		t.Error("RZZ parity structure wrong")
	}
}

func TestInverseAllKinds(t *testing.T) {
	check1 := func(g Gate) {
		u := g.Matrix2()
		ui := g.Inverse().Matrix2()
		if !u.Mul(ui).Equal(linalg.Identity(2), 1e-12) {
			t.Errorf("%v: U·U⁻¹ != I", g)
		}
	}
	for _, k := range oneQubitKinds {
		check1(New(k, 0))
	}
	for _, k := range paramOneQubitKinds {
		check1(NewP(k, []float64{0.77}, 0))
	}
	check1(NewP(U3, []float64{0.4, 1.1, -0.6}, 0))

	check2 := func(g Gate) {
		u := g.Matrix4()
		ui := g.Inverse().Matrix4()
		if !u.Mul(ui).Equal(linalg.Identity(4), 1e-12) {
			t.Errorf("%v: U·U⁻¹ != I", g)
		}
	}
	for _, k := range twoQubitKinds {
		check2(New(k, 0, 1))
	}
	for _, k := range paramTwoQubitKinds {
		check2(NewP(k, []float64{-1.3}, 0, 1))
	}
}

func TestFusedInverse(t *testing.T) {
	g := Gate{Kind: Fused1Q, Qubits: []int{0}, Matrix: New(H, 0).Matrix2()}
	if !g.Inverse().Matrix2().Mul(g.Matrix2()).Equal(linalg.Identity(2), 1e-12) {
		t.Error("fused inverse wrong")
	}
}

func TestIsDiagonal(t *testing.T) {
	for _, k := range []Kind{Z, S, T, RZ, P, CZ, RZZ} {
		g := Gate{Kind: k, Params: []float64{0.1}}
		if !g.IsDiagonal() {
			t.Errorf("%v should be diagonal", k)
		}
	}
	for _, k := range []Kind{X, H, RX, CX, SWAP} {
		g := Gate{Kind: k, Params: []float64{0.1}}
		if g.IsDiagonal() {
			t.Errorf("%v should not be diagonal", k)
		}
	}
}

func TestDiagonalKindsHaveDiagonalMatrices(t *testing.T) {
	for _, k := range []Kind{Z, S, Sdg, T, Tdg} {
		m := New(k, 0).Matrix2()
		if m.At(0, 1) != 0 || m.At(1, 0) != 0 {
			t.Errorf("%v matrix not diagonal", k)
		}
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k, name := range kindNames {
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Errorf("round trip failed for %v", name)
		}
	}
	if _, ok := KindByName("bogus"); ok {
		t.Error("bogus name resolved")
	}
}

func TestGateString(t *testing.T) {
	g := NewP(RX, []float64{0.5}, 2)
	if g.String() != "rx(0.5) q[2]" {
		t.Errorf("String() = %q", g.String())
	}
	g2 := New(CX, 0, 1)
	if g2.String() != "cx q[0], q[1]" {
		t.Errorf("String() = %q", g2.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewP(RX, []float64{0.5}, 3)
	c := g.Clone()
	c.Params[0] = 9
	c.Qubits[0] = 7
	if g.Params[0] != 0.5 || g.Qubits[0] != 3 {
		t.Error("clone shares storage")
	}
}

func TestIsUnitaryClassification(t *testing.T) {
	if New(Measure, 0).IsUnitary() || New(Reset, 0).IsUnitary() || New(Barrier).IsUnitary() {
		t.Error("markers reported unitary")
	}
	if !New(X, 0).IsUnitary() {
		t.Error("X not reported unitary")
	}
}

func TestInversePropertyRandomRotations(t *testing.T) {
	f := func(raw int16, kindSel uint8) bool {
		th := float64(raw) / 5000
		k := paramOneQubitKinds[int(kindSel)%len(paramOneQubitKinds)]
		g := NewP(k, []float64{th}, 0)
		return g.Matrix2().Mul(g.Inverse().Matrix2()).Equal(linalg.Identity(2), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
