package load

import (
	"context"
	"testing"
	"time"

	"repro/internal/runspec"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func startDaemon(t *testing.T, cfg server.Config) string {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	base, stop, err := StartLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = stop() })
	return base
}

func TestClosedLoopEndToEnd(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(func() { telemetry.Disable(); telemetry.Reset() })
	base := startDaemon(t, server.Config{MaxConcurrent: 2, SimWorkers: 2})

	mix, err := runspec.MixByName(runspec.MixSmoke)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		BaseURL:      base,
		Mode:         "closed",
		Concurrency:  3,
		Duration:     1500 * time.Millisecond,
		Mix:          mix,
		Seed:         7,
		SLOTarget:    30 * time.Second,
		PollInterval: 5 * time.Millisecond,
		MetricsEvery: 300 * time.Millisecond,
		KeepOutcomes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatalf("no jobs completed: %+v", rep)
	}
	if rep.Failed > 0 || rep.TimedOut > 0 {
		t.Fatalf("failures under smoke mix: %+v", rep)
	}
	if rep.E2E.Count != rep.Completed || rep.E2E.P99Ms < rep.E2E.P50Ms {
		t.Fatalf("e2e summary inconsistent: %+v", rep.E2E)
	}
	// The smoke mix repeats small classes, so the content-addressed cache
	// must land hits within 1.5s of traffic.
	if rep.CacheHitRate == 0 {
		t.Fatalf("no cache hits in a repeating mix: %+v", rep)
	}
	if rep.SLO.Attainment != 1 {
		t.Fatalf("SLO attainment %g under a 30s target", rep.SLO.Attainment)
	}
	if len(rep.Samples) == 0 {
		t.Fatal("no periodic metrics samples collected")
	}
	if rep.ServerMetrics == nil || rep.ServerMetrics.Counters["server.jobs.completed"] == 0 {
		t.Fatalf("final server metrics missing scheduler counters: %+v", rep.ServerMetrics)
	}
	if _, ok := rep.ServerMetrics.Rings["server.job.e2e_ms"]; !ok {
		t.Fatal("server latency ring missing from /v1/metrics")
	}
	if rep.Mode != "closed" || rep.Concurrency != 3 || rep.Mix != runspec.MixSmoke {
		t.Fatalf("report header wrong: %+v", rep)
	}
}

func TestOpenLoopRejectionsAndRetryAfter(t *testing.T) {
	// A one-worker, one-slot daemon under a fast Poisson stream must shed
	// load with 503s carrying a Retry-After quote.
	base := startDaemon(t, server.Config{MaxConcurrent: 1, QueueDepth: 1, SimWorkers: 1})

	mix, err := runspec.NewMix("slowish", []runspec.MixEntry{
		// Distinct seeds defeat the result cache so every job really runs.
		{Name: "s1", Weight: 1, Spec: runspec.RunSpec{Molecule: runspec.MoleculeSpec{Kind: "synthetic", Orbitals: 4, Seed: 11}}},
		{Name: "s2", Weight: 1, Spec: runspec.RunSpec{Molecule: runspec.MoleculeSpec{Kind: "synthetic", Orbitals: 4, Seed: 12}}},
		{Name: "s3", Weight: 1, Spec: runspec.RunSpec{Molecule: runspec.MoleculeSpec{Kind: "synthetic", Orbitals: 4, Seed: 13}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewPoisson(40)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		BaseURL:      base,
		Mode:         "open",
		Arrival:      arr,
		Duration:     1200 * time.Millisecond,
		Mix:          mix,
		Seed:         3,
		SLOTarget:    30 * time.Second,
		PollInterval: 5 * time.Millisecond,
		KeepOutcomes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected == 0 {
		t.Fatalf("overloaded daemon shed nothing: %+v", rep)
	}
	if rep.Rate503 <= 0 {
		t.Fatalf("503 rate not reported: %+v", rep)
	}
	quoted := false
	for _, o := range rep.Outcomes {
		if o.Status == "rejected" && o.RetryAfterS >= 1 {
			quoted = true
			break
		}
	}
	if !quoted {
		t.Fatal("no rejection carried a Retry-After quote")
	}
}

func TestRunnerConfigValidation(t *testing.T) {
	mix, _ := runspec.MixByName(runspec.MixSmoke)
	bad := []Config{
		{Mode: "closed", Mix: mix, Duration: time.Second},                     // no BaseURL
		{BaseURL: "http://x", Mode: "closed", Duration: time.Second},          // no mix
		{BaseURL: "http://x", Mode: "closed", Mix: mix},                       // no duration
		{BaseURL: "http://x", Mode: "open", Mix: mix, Duration: time.Second},  // open without arrival
		{BaseURL: "http://x", Mode: "weird", Mix: mix, Duration: time.Second}, // bad mode
	}
	for i, cfg := range bad {
		if _, err := NewRunner(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
