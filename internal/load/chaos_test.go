package load

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/runspec"
	"repro/internal/server"
)

// TestChaosDrillSurvivesRestarts runs the full drill in-process: load
// against a daemon with injected worker panics and stalls, restarted
// twice mid-run on the same spool and address. The gate must hold — no
// lost jobs, no duplicates, all energies bit-equal to local control runs.
// (The shell harness repeats this with real SIGKILLs; this test keeps the
// logic race-checked and CI-cheap.)
func TestChaosDrillSurvivesRestarts(t *testing.T) {
	spool := t.TempDir()
	hook, err := server.FaultHookFromEnv("seed=5,panic=0.08,stall=0.04,stall_ms=400,max=4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{
		MaxConcurrent: 2,
		SimWorkers:    2,
		SpoolDir:      spool,
		RetryBudget:   2,
		StallTimeout:  time.Second,
		FaultHook:     hook,
	}
	base, stop, err := StartLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := strings.TrimPrefix(base, "http://")

	mix, err := runspec.MixByName(runspec.MixSmoke)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		rep *ChaosReport
		err error
	}
	drill := make(chan outcome, 1)
	go func() {
		rep, err := RunChaos(context.Background(), ChaosConfig{
			BaseURL:        base,
			Mix:            mix,
			Duration:       4 * time.Second,
			Concurrency:    3,
			Seed:           9,
			PollInterval:   10 * time.Millisecond,
			SubmitRetryGap: 50 * time.Millisecond,
			SettleTimeout:  60 * time.Second,
			Verify:         true,
		})
		drill <- outcome{rep, err}
	}()

	// Two restart cycles while the drill is generating load. The stop is
	// graceful (in-process code cannot SIGKILL itself); the shell harness
	// covers the hard-kill variant. The gap keeps the daemon down long
	// enough for the drill's health prober to witness the outage.
	for cycle := 0; cycle < 2; cycle++ {
		time.Sleep(900 * time.Millisecond)
		if err := stop(); err != nil {
			t.Logf("restart cycle %d: stop: %v", cycle, err)
		}
		time.Sleep(300 * time.Millisecond)
		var restartErr error
		for try := 0; try < 20; try++ {
			_, stop, restartErr = StartLocalAt(addr, cfg)
			if restartErr == nil {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if restartErr != nil {
			t.Fatalf("restart cycle %d: %v", cycle, restartErr)
		}
	}
	defer func() { _ = stop() }()

	res := <-drill
	if res.err != nil {
		t.Fatalf("chaos drill: %v", res.err)
	}
	rep := res.rep
	t.Logf("\n%s", rep.Table())
	if rep.Done == 0 {
		t.Fatalf("no jobs completed across restarts: %+v", rep)
	}
	if rep.RestartsObserved < 2 {
		t.Errorf("prober observed %d restarts, expected ≥ 2", rep.RestartsObserved)
	}
	if err := rep.Gate(2); err != nil {
		t.Errorf("chaos gate failed: %v", err)
	}
	if rep.ControlChecked == 0 {
		t.Error("verification ran no control checks")
	}
}
