package load

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestPoissonMeanGap(t *testing.T) {
	p, err := NewPoisson(50)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		g := p.Gap(r, 0)
		if g < 0 {
			t.Fatal("negative gap")
		}
		total += g
	}
	mean := total.Seconds() / n
	if math.Abs(mean-1.0/50) > 0.002 {
		t.Fatalf("mean gap %.5fs, want ≈ 0.02s", mean)
	}
}

func TestArrivalDeterministicBySeed(t *testing.T) {
	build := func() []Arrival {
		p, _ := NewPoisson(10)
		m, _ := NewMMPP(5, 50, time.Second, 200*time.Millisecond)
		d, _ := NewDiurnal(2, 20, 10*time.Second)
		return []Arrival{p, m, d}
	}
	a, b := build(), build()
	for i := range a {
		r1, r2 := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
		elapsed := time.Duration(0)
		for j := 0; j < 200; j++ {
			g1, g2 := a[i].Gap(r1, elapsed), b[i].Gap(r2, elapsed)
			if g1 != g2 {
				t.Fatalf("%s: gap %d differs under equal seeds: %s vs %s", a[i].Name(), j, g1, g2)
			}
			elapsed += g1
		}
	}
}

func TestMMPPBurstierThanPoisson(t *testing.T) {
	// The MMPP's inter-arrival coefficient of variation must exceed the
	// exponential's CV of 1 — that is the whole point of the model.
	m, err := NewMMPP(2, 80, 2*time.Second, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	var sum, sumSq float64
	const n = 50000
	for i := 0; i < n; i++ {
		g := m.Gap(r, 0).Seconds()
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	cv2 := (sumSq/n - mean*mean) / (mean * mean)
	if cv2 <= 1.1 {
		t.Fatalf("MMPP squared CV = %.3f, want > 1.1 (burstier than Poisson)", cv2)
	}
}

func TestDiurnalRateRamp(t *testing.T) {
	d, err := NewDiurnal(2, 20, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r := d.RateAt(0); math.Abs(r-2) > 1e-9 {
		t.Fatalf("trough rate = %g, want 2", r)
	}
	if r := d.RateAt(5 * time.Second); math.Abs(r-20) > 1e-9 {
		t.Fatalf("crest rate = %g, want 20", r)
	}
	// Thinning produces more arrivals near the crest than the trough.
	r := rand.New(rand.NewSource(7))
	count := func(at time.Duration) int {
		n := 0
		var t0 time.Duration
		for t0 < 2*time.Second {
			t0 += d.Gap(r, at+t0)
			n++
		}
		return n
	}
	trough, crest := count(0), count(4*time.Second)
	if crest <= trough {
		t.Fatalf("crest arrivals (%d) not above trough (%d)", crest, trough)
	}
}

func TestArrivalByName(t *testing.T) {
	for _, name := range []string{"poisson", "mmpp", "diurnal"} {
		a, err := ArrivalByName(name, 5, 0, 0, 0)
		if err != nil || a == nil {
			t.Fatalf("ArrivalByName(%q): %v", name, err)
		}
	}
	if _, err := ArrivalByName("nope", 5, 0, 0, 0); err == nil {
		t.Fatal("unknown arrival accepted")
	}
	if _, err := NewPoisson(0); err == nil {
		t.Fatal("zero-rate poisson accepted")
	}
}
