package load

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// Outcome records one job attempt end to end, timestamped relative to the
// run start.
type Outcome struct {
	// Class is the mix entry name the spec was drawn from.
	Class string `json:"class"`
	// SubmissionID identifies the logical submission: when a rejected
	// (Retry-After) job is resubmitted, every attempt carries the same id,
	// so the report can count the job once instead of inflating the
	// attempt totals. 0 (records from older reports) means unique.
	SubmissionID int64 `json:"submission_id,omitempty"`
	// OffsetMs is the submission time relative to run start.
	OffsetMs float64 `json:"offset_ms"`
	// Status is the terminal job status, or "rejected" (503 admission),
	// or "timeout" (not terminal when the harness drained).
	Status string `json:"status"`
	// E2EMs is submit-to-settled latency (the client-observed latency a
	// user would see). Unset for rejected jobs.
	E2EMs float64 `json:"e2e_ms,omitempty"`
	// QueueWaitMs and RunMs come from the daemon's own job timestamps.
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	RunMs       float64 `json:"run_ms,omitempty"`
	CacheHit    bool    `json:"cache_hit,omitempty"`
	// RetryAfterS is the daemon's quoted wait on a 503.
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
	// SLOOK marks an accepted job that settled within the SLO target.
	SLOOK bool `json:"slo_ok"`
}

// LatencySummary is the percentile digest reported for one latency kind.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summarize computes the digest of a latency sample in milliseconds.
func Summarize(ms []float64) LatencySummary {
	s := LatencySummary{Count: len(ms)}
	if len(ms) == 0 {
		return s
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.MeanMs = sum / float64(len(sorted))
	s.P50Ms = Percentile(sorted, 0.50)
	s.P90Ms = Percentile(sorted, 0.90)
	s.P95Ms = Percentile(sorted, 0.95)
	s.P99Ms = Percentile(sorted, 0.99)
	s.P999Ms = Percentile(sorted, 0.999)
	s.MaxMs = sorted[len(sorted)-1]
	return s
}

// Percentile returns the q-th quantile of a sorted sample by linear
// interpolation between order statistics.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ClassStats breaks the run down by mix entry.
type ClassStats struct {
	Class     string         `json:"class"`
	Completed int            `json:"completed"`
	CacheHits int            `json:"cache_hits"`
	Rejected  int            `json:"rejected"`
	Failed    int            `json:"failed"`
	E2E       LatencySummary `json:"e2e"`
}

// MetricsSample is one periodic /v1/metrics observation.
type MetricsSample struct {
	AtS        float64 `json:"at_s"`
	QueueDepth int64   `json:"queue_depth"`
	Running    int64   `json:"running"`
	Completed  int64   `json:"completed"`
	CacheHits  int64   `json:"cache_hits"`
	Rejected   int64   `json:"rejected"`
}

// SLOReport is the attainment section: the fraction of all attempted jobs
// (rejections count as misses — shed load is violated load) that settled
// within the target.
type SLOReport struct {
	TargetMs   float64 `json:"target_ms"`
	Attainment float64 `json:"attainment"`
}

// Report is the machine-readable outcome of one load run
// (load_report.json).
type Report struct {
	Tool      string  `json:"tool"`
	Mode      string  `json:"mode"` // "closed" or "open"
	Arrival   string  `json:"arrival,omitempty"`
	Mix       string  `json:"mix"`
	Seed      int64   `json:"seed"`
	Target    string  `json:"target"` // daemon base URL
	DurationS float64 `json:"duration_s"`
	// Concurrency is the closed-loop worker count (closed mode only).
	Concurrency int `json:"concurrency,omitempty"`

	Attempted int `json:"attempted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Rejected  int `json:"rejected"`
	TimedOut  int `json:"timed_out"`
	// Resubmissions counts rejected attempts that were retried under the
	// same submission id; they are excluded from Attempted (each logical
	// job counts once, by its final outcome).
	Resubmissions int `json:"resubmissions,omitempty"`

	// ThroughputPerSec counts settled (done) jobs per second of run time.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// OfferedPerSec counts submission attempts per second.
	OfferedPerSec float64 `json:"offered_per_sec"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Rate503       float64 `json:"rate_503"`

	SLO SLOReport `json:"slo"`

	E2E       LatencySummary `json:"e2e"`
	QueueWait LatencySummary `json:"queue_wait"`
	Run       LatencySummary `json:"run"`

	Classes []ClassStats    `json:"classes"`
	Samples []MetricsSample `json:"samples,omitempty"`
	// ServerMetrics is the daemon's final telemetry snapshot.
	ServerMetrics *telemetry.Snapshot `json:"server_metrics,omitempty"`
	// Outcomes carries the raw per-job records when requested (-raw).
	Outcomes []Outcome `json:"outcomes,omitempty"`
}

// dedupeOutcomes collapses outcomes sharing a nonzero submission id to
// the final one (a resubmission after Retry-After supersedes its
// rejections), returning the deduped list and the collapsed count.
// Id-less outcomes pass through untouched.
func dedupeOutcomes(outcomes []Outcome) ([]Outcome, int) {
	seen := map[int64]int{}
	out := make([]Outcome, 0, len(outcomes))
	collapsed := 0
	for _, o := range outcomes {
		if o.SubmissionID == 0 {
			out = append(out, o)
			continue
		}
		if i, ok := seen[o.SubmissionID]; ok {
			out[i] = o
			collapsed++
			continue
		}
		seen[o.SubmissionID] = len(out)
		out = append(out, o)
	}
	return out, collapsed
}

// buildReport aggregates outcomes into the report digest.
func buildReport(outcomes []Outcome, duration time.Duration, sloTarget time.Duration) *Report {
	rep := &Report{
		Tool:      "vqeload",
		DurationS: duration.Seconds(),
		SLO:       SLOReport{TargetMs: float64(sloTarget) / float64(time.Millisecond)},
	}
	outcomes, collapsed := dedupeOutcomes(outcomes)
	rep.Resubmissions = collapsed
	var e2e, queueWait, run []float64
	perClass := map[string]*ClassStats{}
	classE2E := map[string][]float64{}
	sloOK := 0
	for _, o := range outcomes {
		cs := perClass[o.Class]
		if cs == nil {
			cs = &ClassStats{Class: o.Class}
			perClass[o.Class] = cs
		}
		rep.Attempted++
		switch o.Status {
		case "rejected":
			rep.Rejected++
			cs.Rejected++
		case "timeout":
			rep.TimedOut++
		case "done":
			rep.Completed++
			cs.Completed++
			if o.CacheHit {
				cs.CacheHits++
			}
			e2e = append(e2e, o.E2EMs)
			classE2E[o.Class] = append(classE2E[o.Class], o.E2EMs)
			if o.QueueWaitMs > 0 {
				queueWait = append(queueWait, o.QueueWaitMs)
			}
			if o.RunMs > 0 {
				run = append(run, o.RunMs)
			}
		default: // failed, interrupted
			rep.Failed++
			cs.Failed++
		}
		if o.SLOOK {
			sloOK++
		}
	}
	secs := duration.Seconds()
	if secs > 0 {
		rep.ThroughputPerSec = float64(rep.Completed) / secs
		rep.OfferedPerSec = float64(rep.Attempted) / secs
	}
	if rep.Attempted > 0 {
		rep.Rate503 = float64(rep.Rejected) / float64(rep.Attempted)
		rep.SLO.Attainment = float64(sloOK) / float64(rep.Attempted)
	}
	if rep.Completed > 0 {
		hits := 0
		for _, cs := range perClass {
			hits += cs.CacheHits
		}
		rep.CacheHitRate = float64(hits) / float64(rep.Completed)
	}
	rep.E2E = Summarize(e2e)
	rep.QueueWait = Summarize(queueWait)
	rep.Run = Summarize(run)
	names := make([]string, 0, len(perClass))
	for name := range perClass {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cs := perClass[name]
		cs.E2E = Summarize(classE2E[name])
		rep.Classes = append(rep.Classes, *cs)
	}
	return rep
}

// Gate enforces the CI thresholds: a p99 ceiling (0 disables) and a
// minimum SLO attainment (0 disables). A run with no completed jobs
// always fails a non-trivial gate.
func (rep *Report) Gate(failP99 time.Duration, minSLO float64) error {
	if failP99 <= 0 && minSLO <= 0 {
		return nil
	}
	if rep.Completed == 0 {
		return fmt.Errorf("load: gate: no jobs completed")
	}
	if failP99 > 0 {
		limit := float64(failP99) / float64(time.Millisecond)
		if rep.E2E.P99Ms > limit {
			return fmt.Errorf("load: gate: e2e p99 %.1fms exceeds limit %.1fms", rep.E2E.P99Ms, limit)
		}
	}
	if minSLO > 0 && rep.SLO.Attainment < minSLO {
		return fmt.Errorf("load: gate: SLO attainment %.4f below minimum %.4f", rep.SLO.Attainment, minSLO)
	}
	return nil
}

// WriteFile writes the report as indented JSON.
func (rep *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a load_report.json.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := new(Report)
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("load: parse report %s: %w", path, err)
	}
	return rep, nil
}

// Table renders the human-readable run summary.
func (rep *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vqeload %s  mix=%s  seed=%d  duration=%.1fs\n", rep.describeMode(), rep.Mix, rep.Seed, rep.DurationS)
	fmt.Fprintf(&b, "  attempted=%d completed=%d failed=%d rejected=%d timed_out=%d\n",
		rep.Attempted, rep.Completed, rep.Failed, rep.Rejected, rep.TimedOut)
	fmt.Fprintf(&b, "  throughput=%.2f/s offered=%.2f/s cache_hit=%.1f%% 503=%.2f%% slo(≤%.0fms)=%.2f%%\n",
		rep.ThroughputPerSec, rep.OfferedPerSec, 100*rep.CacheHitRate, 100*rep.Rate503,
		rep.SLO.TargetMs, 100*rep.SLO.Attainment)
	row := func(name string, s LatencySummary) {
		if s.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "  %-10s n=%-6d mean=%-8.1f p50=%-8.1f p95=%-8.1f p99=%-8.1f p999=%-8.1f max=%.1f (ms)\n",
			name, s.Count, s.MeanMs, s.P50Ms, s.P95Ms, s.P99Ms, s.P999Ms, s.MaxMs)
	}
	row("e2e", rep.E2E)
	row("queue_wait", rep.QueueWait)
	row("run", rep.Run)
	return b.String()
}

// MarkdownSummary renders the report as a GitHub-flavored markdown table
// for $GITHUB_STEP_SUMMARY.
func (rep *Report) MarkdownSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### vqeload %s — mix `%s`, %.0fs\n\n", rep.describeMode(), rep.Mix, rep.DurationS)
	fmt.Fprintf(&b, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| completed / attempted | %d / %d |\n", rep.Completed, rep.Attempted)
	fmt.Fprintf(&b, "| throughput | %.2f jobs/s |\n", rep.ThroughputPerSec)
	fmt.Fprintf(&b, "| cache hit rate | %.1f%% |\n", 100*rep.CacheHitRate)
	fmt.Fprintf(&b, "| 503 rate | %.2f%% |\n", 100*rep.Rate503)
	fmt.Fprintf(&b, "| SLO attainment (≤ %.0f ms) | %.2f%% |\n\n", rep.SLO.TargetMs, 100*rep.SLO.Attainment)
	fmt.Fprintf(&b, "| latency (ms) | p50 | p95 | p99 | p999 | max |\n|---|---|---|---|---|---|\n")
	row := func(name string, s LatencySummary) {
		if s.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "| %s (n=%d) | %.1f | %.1f | %.1f | %.1f | %.1f |\n",
			name, s.Count, s.P50Ms, s.P95Ms, s.P99Ms, s.P999Ms, s.MaxMs)
	}
	row("end-to-end", rep.E2E)
	row("queue wait", rep.QueueWait)
	row("run", rep.Run)
	return b.String()
}

func (rep *Report) describeMode() string {
	if rep.Mode == "closed" {
		return fmt.Sprintf("closed-loop(c=%d)", rep.Concurrency)
	}
	return "open-loop " + rep.Arrival
}
