// Package load is the serving-scale load harness for the vqed daemon: a
// ServeGen-style workload generator that drives a live daemon over HTTP
// with open-loop (Poisson, bursty MMPP, diurnal ramp) or closed-loop
// (fixed-concurrency) arrival processes over weighted runspec mixes,
// records per-job latency/queue/SLO outcomes plus periodic /v1/metrics
// snapshots, and emits a machine-readable load report with latency
// percentiles, throughput, cache hit rate, 503 rate, and SLO attainment.
package load

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
)

// Arrival generates inter-arrival gaps for an open-loop run. Gap receives
// the elapsed time since the run started so time-varying processes
// (diurnal) can modulate their instantaneous rate. Implementations are
// driven from a single dispatcher goroutine and may keep state; they must
// draw randomness only from the supplied source so seeded runs replay.
type Arrival interface {
	Name() string
	Gap(r *rand.Rand, elapsed time.Duration) time.Duration
}

// expGap draws an exponential inter-arrival gap for a Poisson process at
// ratePerSec.
func expGap(r *rand.Rand, ratePerSec float64) time.Duration {
	// ExpFloat64 has mean 1; scale to the requested rate.
	return time.Duration(r.ExpFloat64() / ratePerSec * float64(time.Second))
}

// Poisson is a stationary open-loop process: exponential gaps at Rate
// jobs/second.
type Poisson struct {
	Rate float64 // jobs per second, > 0
}

// NewPoisson validates the rate.
func NewPoisson(rate float64) (*Poisson, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("%w: load: poisson rate must be > 0 (got %g)", core.ErrInvalidArgument, rate)
	}
	return &Poisson{Rate: rate}, nil
}

func (p *Poisson) Name() string { return fmt.Sprintf("poisson(%.3g/s)", p.Rate) }

func (p *Poisson) Gap(r *rand.Rand, _ time.Duration) time.Duration {
	return expGap(r, p.Rate)
}

// MMPP is a two-state Markov-modulated Poisson process — the standard
// bursty-traffic model: a calm state at CalmRate and a burst state at
// BurstRate, with exponentially distributed dwell times in each. It
// produces the squared-coefficient-of-variation > 1 arrival streams that
// stress queues far harder than a stationary Poisson at the same mean.
type MMPP struct {
	CalmRate  float64       // jobs/s in the calm state
	BurstRate float64       // jobs/s in the burst state
	MeanCalm  time.Duration // mean dwell in the calm state
	MeanBurst time.Duration // mean dwell in the burst state

	burst bool
	dwell time.Duration // remaining dwell in the current state
}

// NewMMPP validates and seeds the process in the calm state.
func NewMMPP(calmRate, burstRate float64, meanCalm, meanBurst time.Duration) (*MMPP, error) {
	if calmRate <= 0 || burstRate <= 0 {
		return nil, fmt.Errorf("%w: load: mmpp rates must be > 0", core.ErrInvalidArgument)
	}
	if meanCalm <= 0 || meanBurst <= 0 {
		return nil, fmt.Errorf("%w: load: mmpp dwell times must be > 0", core.ErrInvalidArgument)
	}
	return &MMPP{CalmRate: calmRate, BurstRate: burstRate, MeanCalm: meanCalm, MeanBurst: meanBurst}, nil
}

func (m *MMPP) Name() string {
	return fmt.Sprintf("mmpp(%.3g/s calm, %.3g/s burst)", m.CalmRate, m.BurstRate)
}

func (m *MMPP) Gap(r *rand.Rand, _ time.Duration) time.Duration {
	for {
		rate, mean := m.CalmRate, m.MeanCalm
		if m.burst {
			rate, mean = m.BurstRate, m.MeanBurst
		}
		if m.dwell <= 0 {
			m.dwell = time.Duration(r.ExpFloat64() * float64(mean))
		}
		gap := expGap(r, rate)
		if gap <= m.dwell {
			m.dwell -= gap
			return gap
		}
		// The state flips before the next arrival: consume the remaining
		// dwell and redraw in the other state.
		m.burst = !m.burst
		m.dwell = 0
	}
}

// Diurnal is a non-stationary Poisson process whose rate ramps
// sinusoidally between Base and Peak over Period — a compressed
// day/night traffic cycle. The run starts at the trough.
type Diurnal struct {
	Base   float64 // jobs/s at the trough
	Peak   float64 // jobs/s at the crest
	Period time.Duration
}

// NewDiurnal validates the ramp.
func NewDiurnal(base, peak float64, period time.Duration) (*Diurnal, error) {
	if base <= 0 || peak < base {
		return nil, fmt.Errorf("%w: load: diurnal needs 0 < base ≤ peak (got %g, %g)",
			core.ErrInvalidArgument, base, peak)
	}
	if period <= 0 {
		return nil, fmt.Errorf("%w: load: diurnal period must be > 0", core.ErrInvalidArgument)
	}
	return &Diurnal{Base: base, Peak: peak, Period: period}, nil
}

func (d *Diurnal) Name() string {
	return fmt.Sprintf("diurnal(%.3g→%.3g/s over %s)", d.Base, d.Peak, d.Period)
}

// RateAt returns the instantaneous rate at elapsed time t.
func (d *Diurnal) RateAt(t time.Duration) float64 {
	phase := 2 * math.Pi * float64(t) / float64(d.Period)
	return d.Base + (d.Peak-d.Base)*(1-math.Cos(phase))/2
}

func (d *Diurnal) Gap(r *rand.Rand, elapsed time.Duration) time.Duration {
	// Thinning (Lewis–Shedler): draw from the peak rate and accept with
	// probability rate(t)/peak, so the non-stationary intensity is exact
	// rather than stepwise.
	t := elapsed
	for {
		gap := expGap(r, d.Peak)
		t += gap
		if r.Float64()*d.Peak <= d.RateAt(t) {
			return t - elapsed
		}
	}
}

// ArrivalByName builds a named arrival process from the generator flags.
// Closed-loop mode has no arrival process and is handled by the Runner.
func ArrivalByName(name string, rate, burstRate, peak float64, period time.Duration) (Arrival, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "poisson":
		return NewPoisson(rate)
	case "mmpp":
		if burstRate <= 0 {
			burstRate = 4 * rate
		}
		// Dwell defaults give ~20% burst duty cycle.
		return NewMMPP(rate, burstRate, 8*time.Second, 2*time.Second)
	case "diurnal":
		if peak <= 0 {
			peak = 3 * rate
		}
		if period <= 0 {
			period = time.Minute
		}
		return NewDiurnal(rate, peak, period)
	}
	return nil, fmt.Errorf("%w: load: unknown arrival process %q (want poisson|mmpp|diurnal)",
		core.ErrInvalidArgument, name)
}
