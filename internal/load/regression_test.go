package load

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runspec"
	"repro/internal/server"
)

// rejectingDaemon is a minimal vqed wire stub that admits nothing: every
// submission gets a 503 with a Retry-After quote, which is exactly the
// regime where a closed-loop worker must back off instead of spinning.
func rejectingDaemon(t *testing.T, submits *atomic.Int64, retryAfter string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		w.Header().Set("Retry-After", retryAfter)
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestClosedLoopBacksOffOnRetryAfter pins the rejection backoff: a
// closed-loop worker that is told Retry-After: 1 must sleep (observing
// cancellation) rather than resubmit immediately. Before the fix each
// worker hammered the daemon in a tight loop — hundreds of submissions
// in this window; with the capped backoff, a handful.
func TestClosedLoopBacksOffOnRetryAfter(t *testing.T) {
	var submits atomic.Int64
	srv := rejectingDaemon(t, &submits, "1")

	mix, err := runspec.MixByName(runspec.MixSmoke)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 2
	r, err := NewRunner(Config{
		BaseURL:      srv.URL,
		Mode:         "closed",
		Concurrency:  workers,
		Duration:     600 * time.Millisecond,
		Mix:          mix,
		Seed:         5,
		KeepOutcomes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n := submits.Load()
	// Each worker submits once, sleeps ~1s (> remaining window), and the
	// loop condition ends the run; allow generous slack for scheduling.
	if n > workers*3 {
		t.Fatalf("closed loop ignored Retry-After: %d submissions from %d workers in 600ms", n, workers)
	}
	if int64(rep.Rejected) != n {
		t.Fatalf("rejections not recorded: %d submits, %d rejected outcomes", n, rep.Rejected)
	}
	for _, o := range rep.Outcomes {
		if o.Status != "rejected" || o.RetryAfterS < 1 {
			t.Fatalf("outcome lost the rejection quote: %+v", o)
		}
	}
}

// TestClosedLoopBackoffObservesCancellation pins that the backoff sleep
// runs through sleepUntil: cancelling the run context mid-backoff must
// end the run promptly instead of finishing the quoted wait.
func TestClosedLoopBackoffObservesCancellation(t *testing.T) {
	var submits atomic.Int64
	srv := rejectingDaemon(t, &submits, "30")

	mix, err := runspec.MixByName(runspec.MixSmoke)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		BaseURL:     srv.URL,
		Mode:        "closed",
		Concurrency: 1,
		Duration:    10 * time.Second,
		Mix:         mix,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond) // let the worker enter its backoff
		cancel()
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = r.Run(ctx)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("run did not stop after cancellation during backoff")
	}
}

// TestStopLocalJoinsServeGoroutine pins StartLocal teardown: stop() must
// wait for the accept-loop goroutine to return, so after stop the port is
// closed and no goroutine (or listener) is left behind.
func TestStopLocalJoinsServeGoroutine(t *testing.T) {
	base, stop, err := StartLocal(server.Config{SimWorkers: 1, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(base)
	if !c.Healthy(context.Background()) {
		t.Fatal("local daemon not healthy before stop")
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	// Serve has returned and the listener is closed: the port must refuse
	// new connections, not hang or be re-accepted by a leaked loop.
	if c.Healthy(context.Background()) {
		t.Fatal("daemon still answering after stop()")
	}
}
