package load

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.5, 5.5}, {1, 10}, {0.9, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%.2f) = %g, want %g", c.q, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty sample must yield 0")
	}
	if Percentile([]float64{7}, 0.99) != 7 {
		t.Error("singleton sample must yield its value")
	}
}

func TestBuildReportAggregation(t *testing.T) {
	outcomes := []Outcome{
		{Class: "a", Status: "done", E2EMs: 10, QueueWaitMs: 2, RunMs: 8, CacheHit: true, SLOOK: true},
		{Class: "a", Status: "done", E2EMs: 20, QueueWaitMs: 5, RunMs: 15, SLOOK: true},
		{Class: "b", Status: "done", E2EMs: 200, SLOOK: false},
		{Class: "b", Status: "rejected", RetryAfterS: 2},
		{Class: "b", Status: "failed"},
		{Class: "a", Status: "timeout"},
	}
	rep := buildReport(outcomes, 10*time.Second, 100*time.Millisecond)
	if rep.Attempted != 6 || rep.Completed != 3 || rep.Rejected != 1 || rep.Failed != 1 || rep.TimedOut != 1 {
		t.Fatalf("counts: %+v", rep)
	}
	if math.Abs(rep.ThroughputPerSec-0.3) > 1e-9 {
		t.Fatalf("throughput = %g", rep.ThroughputPerSec)
	}
	if math.Abs(rep.CacheHitRate-1.0/3) > 1e-9 {
		t.Fatalf("cache hit rate = %g", rep.CacheHitRate)
	}
	if math.Abs(rep.Rate503-1.0/6) > 1e-9 {
		t.Fatalf("503 rate = %g", rep.Rate503)
	}
	if math.Abs(rep.SLO.Attainment-2.0/6) > 1e-9 {
		t.Fatalf("SLO attainment = %g", rep.SLO.Attainment)
	}
	if rep.E2E.Count != 3 || rep.E2E.MaxMs != 200 {
		t.Fatalf("e2e summary = %+v", rep.E2E)
	}
	if len(rep.Classes) != 2 || rep.Classes[0].Class != "a" || rep.Classes[0].CacheHits != 1 {
		t.Fatalf("classes = %+v", rep.Classes)
	}
}

// TestBuildReportDedupesResubmissions: a Retry-After resubmission shares
// its predecessor's submission id and must count as ONE attempted job
// with its final outcome — not as a rejection plus a separate completion.
func TestBuildReportDedupesResubmissions(t *testing.T) {
	outcomes := []Outcome{
		{Class: "a", SubmissionID: 1, Status: "rejected", RetryAfterS: 1},
		{Class: "a", SubmissionID: 1, Status: "rejected", RetryAfterS: 1},
		{Class: "a", SubmissionID: 1, Status: "done", E2EMs: 30, SLOOK: true},
		{Class: "a", SubmissionID: 2, Status: "done", E2EMs: 10, SLOOK: true},
		{Class: "b", Status: "rejected"}, // id-less legacy record: unique
	}
	rep := buildReport(outcomes, 10*time.Second, time.Second)
	if rep.Attempted != 3 {
		t.Errorf("attempted = %d, want 3 (resubmissions collapsed)", rep.Attempted)
	}
	if rep.Completed != 2 || rep.Rejected != 1 {
		t.Errorf("completed/rejected = %d/%d, want 2/1", rep.Completed, rep.Rejected)
	}
	if rep.Resubmissions != 2 {
		t.Errorf("resubmissions = %d, want 2", rep.Resubmissions)
	}
	if math.Abs(rep.Rate503-1.0/3) > 1e-9 {
		t.Errorf("503 rate = %g, want 1/3 (final outcomes only)", rep.Rate503)
	}
	if math.Abs(rep.SLO.Attainment-2.0/3) > 1e-9 {
		t.Errorf("SLO attainment = %g, want 2/3", rep.SLO.Attainment)
	}
}

func TestReportGate(t *testing.T) {
	rep := buildReport([]Outcome{
		{Class: "a", Status: "done", E2EMs: 50, SLOOK: true},
		{Class: "a", Status: "done", E2EMs: 80, SLOOK: true},
	}, time.Second, time.Second)
	if err := rep.Gate(0, 0); err != nil {
		t.Fatalf("disabled gate failed: %v", err)
	}
	if err := rep.Gate(100*time.Millisecond, 0.9); err != nil {
		t.Fatalf("passing gate failed: %v", err)
	}
	if err := rep.Gate(60*time.Millisecond, 0); err == nil {
		t.Fatal("p99 gate did not trip")
	}
	rep2 := buildReport([]Outcome{{Class: "a", Status: "rejected"}}, time.Second, time.Second)
	if err := rep2.Gate(time.Second, 0.5); err == nil {
		t.Fatal("gate must fail with zero completed jobs")
	}
	rep3 := buildReport([]Outcome{
		{Class: "a", Status: "done", E2EMs: 10, SLOOK: true},
		{Class: "a", Status: "rejected"},
	}, time.Second, time.Second)
	if err := rep3.Gate(0, 0.9); err == nil {
		t.Fatal("SLO gate must count rejections as misses")
	}
}

func TestReportRoundTripAndRender(t *testing.T) {
	rep := buildReport([]Outcome{
		{Class: "h2", Status: "done", E2EMs: 12.5, QueueWaitMs: 1, RunMs: 11, SLOOK: true},
	}, 2*time.Second, time.Second)
	rep.Mode = "closed"
	rep.Concurrency = 4
	rep.Mix = "smoke"
	path := filepath.Join(t.TempDir(), "load_report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Fatal("report did not round-trip through JSON")
	}
	if txt := rep.Table(); !strings.Contains(txt, "closed-loop(c=4)") || !strings.Contains(txt, "p99") {
		t.Fatalf("table missing fields:\n%s", txt)
	}
	md := rep.MarkdownSummary()
	for _, want := range []string{"| metric | value |", "SLO attainment", "end-to-end"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown summary missing %q:\n%s", want, md)
		}
	}
}
