package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/runspec"
	"repro/internal/telemetry"
)

// ErrJobNotFound marks a 404 on a job-by-id lookup: the daemon does not
// know the job, as opposed to being temporarily unreachable.
var ErrJobNotFound = errors.New("load: job not found")

// Client is a thin vqed HTTP client used by the harness: submit a spec,
// poll a job to a terminal state, snapshot the daemon's metrics. It
// deliberately decodes job views into a local struct mirroring
// server.View's wire shape and metrics into telemetry.Snapshot — the
// golden-shape test in internal/server pins the daemon to both.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient normalizes the base URL and installs a default transport
// tuned for many short-lived polling requests against one host.
func NewClient(baseURL string) *Client {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConnsPerHost = 256
	return &Client{
		BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:    &http.Client{Transport: t, Timeout: 30 * time.Second},
	}
}

// JobView mirrors the wire fields of server.View the harness consumes.
// Unknown fields are ignored so the daemon can grow its view; the fields
// named here are schema-pinned by the server's golden-shape test.
type JobView struct {
	ID       string `json:"id"`
	SpecHash string `json:"spec_hash"`
	Status   string `json:"status"`
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error"`
	// Attempt counts scheduler retries consumed (panic/stall recovery).
	Attempt   int        `json:"attempt"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started"`
	Finished  *time.Time `json:"finished"`
	// Result is present on detail views of settled jobs; only the fields
	// the chaos verifier compares are decoded.
	Result *JobResult `json:"result"`
}

// JobResult is the slice of the daemon's result document the harness
// consumes (bit-equality checks compare Energy exactly).
type JobResult struct {
	Energy    float64 `json:"energy"`
	SpecHash  string  `json:"spec_hash"`
	Converged bool    `json:"converged"`
}

// terminal mirrors server.Status.Terminal without importing the package
// (the harness speaks only the wire protocol).
func (v *JobView) terminal() bool {
	switch v.Status {
	case "done", "failed", "interrupted":
		return true
	}
	return false
}

// SubmitResult is the outcome of one submission attempt.
type SubmitResult struct {
	View *JobView
	// Rejected is set on 503 admission rejections; RetryAfter carries the
	// daemon's quoted wait when it sent one.
	Rejected   bool
	RetryAfter time.Duration
	StatusCode int
}

// Submit posts a spec. A 202/200 returns the job view; a 503 returns
// Rejected with the quoted Retry-After; other statuses are errors.
func (c *Client) Submit(ctx context.Context, spec *runspec.RunSpec) (*SubmitResult, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("load: marshal spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	res := &SubmitResult{StatusCode: resp.StatusCode}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		v := new(JobView)
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return nil, fmt.Errorf("load: decode job view: %w", err)
		}
		res.View = v
		return res, nil
	case http.StatusServiceUnavailable:
		res.Rejected = true
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if s, err := strconv.Atoi(ra); err == nil {
				res.RetryAfter = time.Duration(s) * time.Second
			}
		}
		return res, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return nil, fmt.Errorf("load: submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
}

// Job fetches the current view of a job.
func (c *Client) Job(ctx context.Context, id string) (*JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		// The chaos harness keys on this: a 404 after a daemon restart
		// means the journal LOST the job, which is precisely the failure
		// the drill exists to catch (vs. connection errors, which just
		// mean the daemon is mid-restart).
		return nil, fmt.Errorf("%w: job %s", ErrJobNotFound, id)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("load: job %s: HTTP %d: %s", id, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	v := new(JobView)
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return nil, fmt.Errorf("load: decode job view: %w", err)
	}
	return v, nil
}

// WaitTerminal polls a job until it settles, the context ends, or the
// deadline passes.
func (c *Client) WaitTerminal(ctx context.Context, id string, poll, timeout time.Duration) (*JobView, error) {
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if v.terminal() {
			return v, nil
		}
		if timeout > 0 && time.Now().After(deadline) {
			return v, fmt.Errorf("load: job %s not terminal after %s (status %s)", id, timeout, v.Status)
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Metrics snapshots /v1/metrics into the telemetry schema.
func (c *Client) Metrics(ctx context.Context) (*telemetry.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: metrics: HTTP %d", resp.StatusCode)
	}
	snap := new(telemetry.Snapshot)
	if err := json.NewDecoder(resp.Body).Decode(snap); err != nil {
		return nil, fmt.Errorf("load: decode metrics: %w", err)
	}
	return snap, nil
}

// Healthy reports whether /healthz answers 200.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return false
	}
	defer drain(resp)
	return resp.StatusCode == http.StatusOK
}

// drain consumes and closes a response body so the transport reuses the
// connection — the harness issues thousands of polls per run.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}
