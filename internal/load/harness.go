package load

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/runspec"
	"repro/internal/telemetry"
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the daemon under test (e.g. http://127.0.0.1:8931).
	BaseURL string
	// Mode: "closed" (fixed concurrency, each worker submits its next job
	// when the previous settles) or "open" (arrival-process driven,
	// concurrency unbounded up to MaxInFlight — queueing delay does not
	// slow the generator, which is what makes open loop honest about
	// overload).
	Mode string
	// Arrival drives open-loop submission times (required in open mode).
	Arrival Arrival
	// Concurrency is the closed-loop worker count (default 4).
	Concurrency int
	// MaxInFlight caps open-loop outstanding jobs so a stalled daemon
	// degrades the generator instead of exhausting client memory; beyond
	// the cap, arrivals are recorded as client-shed rejections (default
	// 512).
	MaxInFlight int
	// Duration is how long to generate load (required).
	Duration time.Duration
	// Mix is the spec distribution (required).
	Mix *runspec.Mix
	// Seed makes the spec/arrival sequence reproducible (default 1).
	Seed int64
	// SLOTarget is the per-job end-to-end latency objective (default 5s).
	SLOTarget time.Duration
	// PollInterval is the job status polling cadence (default 25ms).
	PollInterval time.Duration
	// JobTimeout bounds one job's settle wait (default 120s).
	JobTimeout time.Duration
	// MetricsEvery samples /v1/metrics periodically (0 disables).
	MetricsEvery time.Duration
	// KeepOutcomes embeds the raw per-job records in the report.
	KeepOutcomes bool
}

func (c *Config) applyDefaults() error {
	if c.BaseURL == "" {
		return fmt.Errorf("%w: load: BaseURL required", core.ErrInvalidArgument)
	}
	if c.Mix == nil {
		return fmt.Errorf("%w: load: Mix required", core.ErrInvalidArgument)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("%w: load: Duration must be > 0", core.ErrInvalidArgument)
	}
	switch c.Mode {
	case "closed":
	case "open":
		if c.Arrival == nil {
			return fmt.Errorf("%w: load: open mode needs an Arrival process", core.ErrInvalidArgument)
		}
	default:
		return fmt.Errorf("%w: load: unknown mode %q (want closed|open)", core.ErrInvalidArgument, c.Mode)
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 5 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	return nil
}

// Runner executes load runs against one daemon.
type Runner struct {
	cfg    Config
	client *Client
	// subSeq issues submission ids: one per logical job, shared across its
	// resubmission attempts so the report counts it once.
	subSeq atomic.Int64

	mu       sync.Mutex
	outcomes []Outcome
	samples  []MetricsSample
}

// NewRunner validates the config.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, client: NewClient(cfg.BaseURL)}, nil
}

// Run generates load for the configured duration, waits for in-flight
// jobs to settle, and returns the aggregated report.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if !r.client.Healthy(ctx) {
		return nil, fmt.Errorf("load: daemon at %s is not healthy", r.cfg.BaseURL)
	}
	start := time.Now()
	end := start.Add(r.cfg.Duration)

	// Jobs submitted just before the deadline still get their full settle
	// wait; the run context only caps the pathological case.
	runCtx, cancel := context.WithDeadline(ctx, end.Add(r.cfg.JobTimeout+30*time.Second))
	defer cancel()

	samplerDone := make(chan struct{})
	if r.cfg.MetricsEvery > 0 {
		go r.sampleMetrics(runCtx, start, end, samplerDone)
	} else {
		close(samplerDone)
	}

	var wg sync.WaitGroup
	switch r.cfg.Mode {
	case "closed":
		for i := 0; i < r.cfg.Concurrency; i++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(r.cfg.Seed + int64(worker)))
				for time.Now().Before(end) && runCtx.Err() == nil {
					entry := r.cfg.Mix.Sample(rng)
					// One submission id per logical job: a Retry-After
					// resubmission re-posts the SAME spec under the same id,
					// so the report counts the job once by its final fate.
					id := r.subSeq.Add(1)
					for {
						o, recorded := r.doJob(runCtx, start, entry, id)
						if !recorded || o.Status != "rejected" {
							break
						}
						// Honor the daemon's Retry-After quote instead of
						// hammering an already-full queue; the wait runs
						// through sleepUntil so shutdown still cancels it.
						backoff := time.Duration(o.RetryAfterS * float64(time.Second))
						if backoff <= 0 {
							backoff = 50 * time.Millisecond
						}
						if backoff > maxRejectBackoff {
							backoff = maxRejectBackoff
						}
						sleepUntil(runCtx, time.Now().Add(backoff))
						if !time.Now().Before(end) || runCtx.Err() != nil {
							break
						}
					}
				}
			}(i)
		}
		wg.Wait()
	case "open":
		rng := rand.New(rand.NewSource(r.cfg.Seed))
		sem := make(chan struct{}, r.cfg.MaxInFlight)
		for runCtx.Err() == nil {
			gap := r.cfg.Arrival.Gap(rng, time.Since(start))
			next := time.Now().Add(gap)
			if next.After(end) {
				break
			}
			sleepUntil(runCtx, next)
			if runCtx.Err() != nil {
				break
			}
			entry := r.cfg.Mix.Sample(rng)
			id := r.subSeq.Add(1)
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(entry runspec.MixEntry, id int64) {
					defer wg.Done()
					defer func() { <-sem }()
					r.doJob(runCtx, start, entry, id)
				}(entry, id)
			default:
				// Client-side shed: the generator refuses to buffer more
				// in-flight work; count it like an admission rejection.
				r.record(Outcome{Class: entry.Name, SubmissionID: id,
					Status: "rejected", OffsetMs: msSince(start, time.Now())})
			}
		}
		wg.Wait()
	}
	cancel()
	<-samplerDone

	var final *telemetry.Snapshot
	if snap, err := r.client.Metrics(ctx); err == nil {
		final = snap
	}

	r.mu.Lock()
	outcomes := r.outcomes
	samples := r.samples
	r.mu.Unlock()

	rep := buildReport(outcomes, r.cfg.Duration, r.cfg.SLOTarget)
	rep.Mode = r.cfg.Mode
	if r.cfg.Arrival != nil {
		rep.Arrival = r.cfg.Arrival.Name()
	}
	rep.Mix = r.cfg.Mix.Name()
	rep.Seed = r.cfg.Seed
	rep.Target = r.cfg.BaseURL
	rep.Concurrency = r.cfg.Concurrency
	if r.cfg.Mode == "open" {
		rep.Concurrency = 0
	}
	rep.Samples = samples
	rep.ServerMetrics = final
	if r.cfg.KeepOutcomes {
		rep.Outcomes = outcomes
	}
	return rep, nil
}

// maxRejectBackoff caps how long a closed-loop worker honors a
// Retry-After quote, so a daemon advertising a long queue drain still
// gets probed within the run window.
const maxRejectBackoff = 2 * time.Second

// doJob submits one spec, waits for it to settle, and records the
// outcome. It returns the outcome and whether one was recorded
// (recorded=false means the run is shutting down, not a daemon result).
func (r *Runner) doJob(ctx context.Context, start time.Time, entry runspec.MixEntry, id int64) (Outcome, bool) {
	submitted := time.Now()
	o := Outcome{Class: entry.Name, SubmissionID: id, OffsetMs: msSince(start, submitted)}
	spec := entry.Spec // copy; the runner never mutates mix templates
	sub, err := r.client.Submit(ctx, &spec)
	if err != nil {
		if ctx.Err() != nil {
			return o, false // run shutdown, not a daemon outcome
		}
		o.Status = "failed"
		r.record(o)
		return o, true
	}
	if sub.Rejected {
		o.Status = "rejected"
		o.RetryAfterS = sub.RetryAfter.Seconds()
		r.record(o)
		return o, true
	}
	view := sub.View
	if !view.terminal() {
		view, err = r.client.WaitTerminal(ctx, view.ID, r.cfg.PollInterval, r.cfg.JobTimeout)
		if err != nil && (view == nil || !view.terminal()) {
			if ctx.Err() != nil && !errors.Is(err, context.DeadlineExceeded) {
				return o, false
			}
			o.Status = "timeout"
			r.record(o)
			return o, true
		}
	}
	settled := time.Now()
	o.Status = view.Status
	o.CacheHit = view.CacheHit
	o.E2EMs = msSince(submitted, settled)
	if view.Started != nil {
		o.QueueWaitMs = msSince(view.Submitted, *view.Started)
	}
	if view.Started != nil && view.Finished != nil {
		o.RunMs = msSince(*view.Started, *view.Finished)
	}
	o.SLOOK = view.Status == "done" && o.E2EMs <= float64(r.cfg.SLOTarget)/float64(time.Millisecond)
	r.record(o)
	return o, true
}

func (r *Runner) record(o Outcome) {
	r.mu.Lock()
	r.outcomes = append(r.outcomes, o)
	r.mu.Unlock()
}

// sampleMetrics polls /v1/metrics on the configured cadence until the run
// window closes.
func (r *Runner) sampleMetrics(ctx context.Context, start, end time.Time, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(r.cfg.MetricsEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-ticker.C:
			if now.After(end) {
				return
			}
			snap, err := r.client.Metrics(ctx)
			if err != nil {
				continue
			}
			sample := MetricsSample{
				AtS:        now.Sub(start).Seconds(),
				QueueDepth: snap.Gauges["server.queue.depth"],
				Running:    snap.Gauges["server.jobs.running"],
				Completed:  snap.Counters["server.jobs.completed"],
				CacheHits:  snap.Counters["server.cache.hits"],
				Rejected:   snap.Counters["server.jobs.rejected"],
			}
			r.mu.Lock()
			r.samples = append(r.samples, sample)
			r.mu.Unlock()
		}
	}
}

// sleepUntil blocks until t or context cancellation.
func sleepUntil(ctx context.Context, t time.Time) {
	d := time.Until(t)
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	}
}

func msSince(from, to time.Time) float64 {
	return float64(to.Sub(from)) / float64(time.Millisecond)
}
