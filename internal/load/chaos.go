package load

// The chaos drill: closed-loop load against a vqed daemon that an outside
// driver (scripts/vqed_chaos.sh) is SIGKILLing and restarting mid-run,
// with worker faults injected via the daemon's VQED_FAULTS hook. The
// harness tolerates the resulting connection failures, then audits the
// durability contract:
//
//   - zero job loss: every job the daemon acknowledged settles, and no
//     restart makes it forget an ID (a 404 after acceptance is "lost");
//   - no duplicate results: one job ID per logical submission, and every
//     job sharing a spec hash reports the bit-identical energy;
//   - resume fidelity: energies match a locally computed uninterrupted
//     control run of the same spec, bit for bit.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/runspec"
)

// ChaosConfig parameterizes one chaos drill.
type ChaosConfig struct {
	// BaseURL is the daemon under attack.
	BaseURL string
	// Mix is the spec distribution (required; keep the entries small —
	// every distinct spec is recomputed locally for the control check).
	Mix *runspec.Mix
	// Duration is the submission window (required). Jobs accepted inside
	// the window get their full settle wait after it closes.
	Duration time.Duration
	// Concurrency is the closed-loop submitter count (default 3).
	Concurrency int
	// Seed makes the spec sequence reproducible (default 1).
	Seed int64
	// PollInterval is the settle-polling cadence (default 50ms).
	PollInterval time.Duration
	// SettleTimeout bounds one accepted job's settle wait, restarts
	// included (default 180s).
	SettleTimeout time.Duration
	// SubmitRetryGap paces re-submission while the daemon is down
	// (default 200ms).
	SubmitRetryGap time.Duration
	// Verify enables the in-process control recomputation and bit-equality
	// audit (default on via the CLI; costs one local run per distinct
	// spec).
	Verify bool
}

func (c *ChaosConfig) applyDefaults() error {
	if c.BaseURL == "" {
		return fmt.Errorf("%w: load: chaos: BaseURL required", core.ErrInvalidArgument)
	}
	if c.Mix == nil {
		return fmt.Errorf("%w: load: chaos: Mix required", core.ErrInvalidArgument)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("%w: load: chaos: Duration must be > 0", core.ErrInvalidArgument)
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 50 * time.Millisecond
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 180 * time.Second
	}
	if c.SubmitRetryGap <= 0 {
		c.SubmitRetryGap = 200 * time.Millisecond
	}
	return nil
}

// ChaosJob is the audited fate of one logical submission.
type ChaosJob struct {
	SubmissionID int64  `json:"submission_id"`
	Class        string `json:"class"`
	JobID        string `json:"job_id,omitempty"`
	SpecHash     string `json:"spec_hash,omitempty"`
	// Status: the terminal daemon status, or "lost" (the daemon forgot an
	// acknowledged ID after a restart), "unsettled" (no terminal state
	// within SettleTimeout), or "unaccepted" (the window closed before the
	// daemon ever acknowledged the submission — not a durability fault).
	Status string `json:"status"`
	// Attempts counts submission tries: rejections and connection failures
	// during daemon restarts before the acceptance.
	Attempts int     `json:"attempts"`
	Energy   float64 `json:"energy,omitempty"`
	// Retries is the daemon-side scheduler retry count (injected panics
	// and stalls consumed from the job's budget).
	Retries int `json:"retries,omitempty"`
}

// ChaosReport is the machine-readable outcome of one drill
// (chaos_report.json).
type ChaosReport struct {
	Tool      string  `json:"tool"`
	Target    string  `json:"target"`
	Mix       string  `json:"mix"`
	Seed      int64   `json:"seed"`
	DurationS float64 `json:"duration_s"`

	Submitted   int `json:"submitted"` // logical submissions (unaccepted included)
	Accepted    int `json:"accepted"`
	Done        int `json:"done"`
	Failed      int `json:"failed"`
	Interrupted int `json:"interrupted"`
	Lost        int `json:"lost"`
	Unsettled   int `json:"unsettled"`
	Unaccepted  int `json:"unaccepted"`
	// DuplicateJobIDs counts daemon job IDs handed to more than one
	// logical submission — an exactly-once violation.
	DuplicateJobIDs int `json:"duplicate_job_ids"`
	// DaemonRetries totals scheduler retries across settled jobs (evidence
	// the injected faults actually fired and were recovered).
	DaemonRetries int `json:"daemon_retries"`
	// RestartsObserved counts daemon down→up transitions seen by the
	// health prober during the drill.
	RestartsObserved int `json:"restarts_observed"`

	// ControlChecked / BitMismatches audit resume fidelity: every done
	// job's energy against the local uninterrupted control run of its
	// spec, compared by exact bit pattern.
	ControlChecked int `json:"control_checked"`
	BitMismatches  int `json:"bit_mismatches"`
	// ResultDivergence counts spec hashes whose daemon-side jobs disagree
	// among themselves (duplicate submissions must be bit-identical).
	ResultDivergence int `json:"result_divergence"`

	Jobs []ChaosJob `json:"jobs"`
}

// RunChaos executes the drill: generate load, survive the kills, audit.
func RunChaos(ctx context.Context, cfg ChaosConfig) (*ChaosReport, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	client := NewClient(cfg.BaseURL)
	// The daemon must be up once before the drill starts; after that,
	// downtime is part of the exercise.
	if !client.Healthy(ctx) {
		return nil, fmt.Errorf("load: chaos: daemon at %s is not healthy", cfg.BaseURL)
	}

	start := time.Now()
	end := start.Add(cfg.Duration)
	runCtx, cancel := context.WithDeadline(ctx, end.Add(cfg.SettleTimeout+30*time.Second))
	defer cancel()

	// Health prober: counts restarts as down→up transitions.
	var restarts atomic.Int64
	probeDone := make(chan struct{})
	probeStop := make(chan struct{})
	go func() {
		defer close(probeDone)
		up := true
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-probeStop:
				return
			case <-runCtx.Done():
				return
			case <-tick.C:
				healthy := client.Healthy(runCtx)
				if healthy && !up {
					restarts.Add(1)
				}
				up = healthy
			}
		}
	}()

	var (
		mu   sync.Mutex
		jobs []ChaosJob
		seq  atomic.Int64
	)
	record := func(j ChaosJob) {
		mu.Lock()
		jobs = append(jobs, j)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)))
			for time.Now().Before(end) && runCtx.Err() == nil {
				entry := cfg.Mix.Sample(rng)
				j := ChaosJob{SubmissionID: seq.Add(1), Class: entry.Name}
				if !chaosSubmit(runCtx, client, cfg, entry, end, &j) {
					record(j)
					continue
				}
				chaosSettle(runCtx, client, cfg, &j)
				record(j)
			}
		}(w)
	}
	wg.Wait()
	close(probeStop)
	<-probeDone

	mu.Lock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].SubmissionID < jobs[b].SubmissionID })
	all := jobs
	mu.Unlock()

	rep := buildChaosReport(all, cfg)
	rep.RestartsObserved = int(restarts.Load())
	if cfg.Verify {
		if err := rep.verifyEnergies(ctx, cfg.Mix); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// chaosSubmit posts one spec until acceptance, riding out rejections and
// daemon downtime. Returns false when the window closed first (j.Status
// is then "unaccepted").
func chaosSubmit(ctx context.Context, client *Client, cfg ChaosConfig, entry runspec.MixEntry, end time.Time, j *ChaosJob) bool {
	spec := entry.Spec
	for {
		if ctx.Err() != nil || !time.Now().Before(end.Add(cfg.SubmitRetryGap)) {
			j.Status = "unaccepted"
			return false
		}
		j.Attempts++
		sub, err := client.Submit(ctx, &spec)
		switch {
		case err != nil:
			// Daemon down (mid-kill) or submission interrupted: the job was
			// never acknowledged, so retrying the same spec is safe — the
			// daemon's content-addressed cache collapses any duplicate that
			// did slip through before the crash.
			sleepUntil(ctx, time.Now().Add(cfg.SubmitRetryGap))
		case sub.Rejected:
			backoff := sub.RetryAfter
			if backoff <= 0 {
				backoff = cfg.SubmitRetryGap
			}
			if backoff > maxRejectBackoff {
				backoff = maxRejectBackoff
			}
			sleepUntil(ctx, time.Now().Add(backoff))
		default:
			j.JobID = sub.View.ID
			j.SpecHash = sub.View.SpecHash
			return true
		}
	}
}

// chaosSettle polls an accepted job to a terminal state, tolerating
// connection failures while the daemon restarts. A 404 is job loss.
func chaosSettle(ctx context.Context, client *Client, cfg ChaosConfig, j *ChaosJob) {
	deadline := time.Now().Add(cfg.SettleTimeout)
	for {
		if ctx.Err() != nil || time.Now().After(deadline) {
			j.Status = "unsettled"
			return
		}
		v, err := client.Job(ctx, j.JobID)
		switch {
		case errors.Is(err, ErrJobNotFound):
			j.Status = "lost"
			return
		case err != nil:
			sleepUntil(ctx, time.Now().Add(cfg.PollInterval))
		case v.terminal():
			j.Status = v.Status
			j.Retries = v.Attempt
			if v.Result != nil {
				j.Energy = v.Result.Energy
			}
			return
		default:
			sleepUntil(ctx, time.Now().Add(cfg.PollInterval))
		}
	}
}

func buildChaosReport(jobs []ChaosJob, cfg ChaosConfig) *ChaosReport {
	rep := &ChaosReport{
		Tool:      "vqeload-chaos",
		Target:    cfg.BaseURL,
		Mix:       cfg.Mix.Name(),
		Seed:      cfg.Seed,
		DurationS: cfg.Duration.Seconds(),
		Jobs:      jobs,
	}
	ids := map[string]int{}
	for _, j := range jobs {
		rep.Submitted++
		switch j.Status {
		case "unaccepted":
			rep.Unaccepted++
			continue
		}
		rep.Accepted++
		ids[j.JobID]++
		rep.DaemonRetries += j.Retries
		switch j.Status {
		case "done":
			rep.Done++
		case "failed":
			rep.Failed++
		case "interrupted":
			rep.Interrupted++
		case "lost":
			rep.Lost++
		case "unsettled":
			rep.Unsettled++
		}
	}
	for _, n := range ids {
		if n > 1 {
			rep.DuplicateJobIDs += n - 1
		}
	}
	return rep
}

// verifyEnergies recomputes every distinct done spec locally —
// uninterrupted, same engine — and compares energies bit for bit, both
// control-vs-daemon and daemon-job-vs-daemon-job within a spec hash.
func (rep *ChaosReport) verifyEnergies(ctx context.Context, mix *runspec.Mix) error {
	specByHash := map[string]*runspec.RunSpec{}
	for _, e := range mix.Entries() {
		spec := e.Spec
		specByHash[spec.Hash()] = &spec
	}
	byHash := map[string][]int{}
	for i, j := range rep.Jobs {
		if j.Status == "done" {
			byHash[j.SpecHash] = append(byHash[j.SpecHash], i)
		}
	}
	for hash, idxs := range byHash {
		first := rep.Jobs[idxs[0]].Energy
		for _, i := range idxs[1:] {
			if math.Float64bits(rep.Jobs[i].Energy) != math.Float64bits(first) {
				rep.ResultDivergence++
				break
			}
		}
		spec := specByHash[hash]
		if spec == nil {
			// A hash the mix cannot explain (should not happen) — count it
			// as unverifiable rather than guessing.
			continue
		}
		control, err := runspec.Run(ctx, spec, runspec.RunOptions{})
		if err != nil {
			return fmt.Errorf("load: chaos: control run for %s: %w", hash, err)
		}
		rep.ControlChecked += len(idxs)
		for _, i := range idxs {
			if math.Float64bits(rep.Jobs[i].Energy) != math.Float64bits(control.Energy) {
				rep.BitMismatches++
			}
		}
	}
	return nil
}

// Gate enforces the drill's acceptance: zero loss, zero duplicates, zero
// divergence, everything settled, and — when the driver told us how many
// kills it delivered — that the harness actually witnessed them.
func (rep *ChaosReport) Gate(minRestarts int) error {
	var faults []string
	if rep.Done == 0 {
		faults = append(faults, "no jobs completed")
	}
	if rep.Lost > 0 {
		faults = append(faults, fmt.Sprintf("%d job(s) LOST after restart", rep.Lost))
	}
	if rep.Unsettled > 0 {
		faults = append(faults, fmt.Sprintf("%d job(s) never settled", rep.Unsettled))
	}
	if rep.Failed > 0 {
		faults = append(faults, fmt.Sprintf("%d job(s) failed", rep.Failed))
	}
	if rep.DuplicateJobIDs > 0 {
		faults = append(faults, fmt.Sprintf("%d duplicate job id(s)", rep.DuplicateJobIDs))
	}
	if rep.ResultDivergence > 0 {
		faults = append(faults, fmt.Sprintf("%d spec(s) with diverging results", rep.ResultDivergence))
	}
	if rep.BitMismatches > 0 {
		faults = append(faults, fmt.Sprintf("%d energy(ies) not bit-equal to control", rep.BitMismatches))
	}
	if minRestarts > 0 && rep.RestartsObserved < minRestarts {
		faults = append(faults, fmt.Sprintf("observed %d restart(s), expected ≥ %d — the drill did not actually kill the daemon", rep.RestartsObserved, minRestarts))
	}
	if len(faults) > 0 {
		return fmt.Errorf("load: chaos gate: %s", strings.Join(faults, "; "))
	}
	return nil
}

// WriteFile writes the report as indented JSON.
func (rep *ChaosReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Table renders the human-readable drill summary.
func (rep *ChaosReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vqeload chaos  target=%s mix=%s seed=%d window=%.1fs\n",
		rep.Target, rep.Mix, rep.Seed, rep.DurationS)
	fmt.Fprintf(&b, "  submitted=%d accepted=%d done=%d failed=%d interrupted=%d unaccepted=%d\n",
		rep.Submitted, rep.Accepted, rep.Done, rep.Failed, rep.Interrupted, rep.Unaccepted)
	fmt.Fprintf(&b, "  lost=%d unsettled=%d duplicate_ids=%d restarts_observed=%d daemon_retries=%d\n",
		rep.Lost, rep.Unsettled, rep.DuplicateJobIDs, rep.RestartsObserved, rep.DaemonRetries)
	fmt.Fprintf(&b, "  control_checked=%d bit_mismatches=%d result_divergence=%d\n",
		rep.ControlChecked, rep.BitMismatches, rep.ResultDivergence)
	return b.String()
}
