package load

// Sweep-family client surface: submit a SweepSpec, poll the family view,
// wait for the curve to settle. Like the job client, it decodes into
// local structs mirroring the daemon's wire shapes — the golden-shape
// tests in internal/server pin the daemon to these field names.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/runspec"
)

// ErrSweepNotFound marks a 404 on a sweep-by-id lookup: the daemon does
// not know the family — after a restart that means the journal lost it,
// which is the failure the sweep smoke drill exists to catch.
var ErrSweepNotFound = errors.New("load: sweep not found")

// SweepPointView mirrors server.SweepPointView's wire fields.
type SweepPointView struct {
	Point       int     `json:"point"`
	Value       float64 `json:"value"`
	SpecHash    string  `json:"spec_hash"`
	Status      string  `json:"status"`
	CacheHit    bool    `json:"cache_hit"`
	WarmStarted bool    `json:"warm_started"`
	Attempt     int     `json:"attempt"`
	Error       string  `json:"error"`
	Energy      float64 `json:"energy"`
}

// CurvePoint mirrors server.CurvePoint: one finished sample, ascending
// by axis value.
type CurvePoint struct {
	Value       float64 `json:"value"`
	Energy      float64 `json:"energy"`
	Exact       float64 `json:"exact"`
	Evaluations int     `json:"evaluations"`
}

// SweepView mirrors the wire fields of server.SweepView the harness
// consumes.
type SweepView struct {
	ID                string           `json:"id"`
	FamilyHash        string           `json:"family_hash"`
	Param             string           `json:"param"`
	Status            string           `json:"status"`
	Error             string           `json:"error"`
	Points            int              `json:"points"`
	Done              int              `json:"done"`
	Failed            int              `json:"failed"`
	Cancelled         int              `json:"cancelled"`
	CacheHits         int              `json:"cache_hits"`
	WarmStarts        int              `json:"warm_starts"`
	EnergyEvaluations int              `json:"energy_evaluations"`
	Submitted         time.Time        `json:"submitted"`
	Started           *time.Time       `json:"started"`
	Finished          *time.Time       `json:"finished"`
	PointStates       []SweepPointView `json:"point_states"`
	Curve             []CurvePoint     `json:"curve"`
}

// Terminal mirrors server.Status.Terminal for family states.
func (v *SweepView) Terminal() bool {
	switch v.Status {
	case "done", "failed", "interrupted", "cancelled":
		return true
	}
	return false
}

// SubmitSweepResult is the outcome of one family submission attempt.
type SubmitSweepResult struct {
	View *SweepView
	// Rejected is set on 503 admission rejections; RetryAfter carries the
	// daemon's quoted wait when it sent one.
	Rejected   bool
	RetryAfter time.Duration
	StatusCode int
}

// SubmitSweep posts a family document. A 202/200 returns the sweep view;
// a 503 returns Rejected with the quoted Retry-After.
func (c *Client) SubmitSweep(ctx context.Context, ss *runspec.SweepSpec) (*SubmitSweepResult, error) {
	body, err := json.Marshal(ss)
	if err != nil {
		return nil, fmt.Errorf("load: marshal sweep: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	res := &SubmitSweepResult{StatusCode: resp.StatusCode}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		v := new(SweepView)
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return nil, fmt.Errorf("load: decode sweep view: %w", err)
		}
		res.View = v
		return res, nil
	case http.StatusServiceUnavailable:
		res.Rejected = true
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if s, err := strconv.Atoi(ra); err == nil {
				res.RetryAfter = time.Duration(s) * time.Second
			}
		}
		return res, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return nil, fmt.Errorf("load: submit sweep: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
}

// Sweep fetches the current detail view of a family (per-point states
// and the partial curve included).
func (c *Client) Sweep(ctx context.Context, id string) (*SweepView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/sweeps/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: sweep %s", ErrSweepNotFound, id)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("load: sweep %s: HTTP %d: %s", id, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	v := new(SweepView)
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return nil, fmt.Errorf("load: decode sweep view: %w", err)
	}
	return v, nil
}

// CancelSweep requests family cancellation (idempotent) and returns the
// resulting view.
func (c *Client) CancelSweep(ctx context.Context, id string) (*SweepView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/sweeps/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: sweep %s", ErrSweepNotFound, id)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("load: cancel sweep %s: HTTP %d: %s", id, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	v := new(SweepView)
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return nil, fmt.Errorf("load: decode sweep view: %w", err)
	}
	return v, nil
}

// WaitSweepTerminal polls a family until it settles, the context ends,
// or the deadline passes.
func (c *Client) WaitSweepTerminal(ctx context.Context, id string, poll, timeout time.Duration) (*SweepView, error) {
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		v, err := c.Sweep(ctx, id)
		if err != nil {
			return nil, err
		}
		if v.Terminal() {
			return v, nil
		}
		if timeout > 0 && time.Now().After(deadline) {
			return v, fmt.Errorf("load: sweep %s not terminal after %s (status %s, %d/%d done)",
				id, timeout, v.Status, v.Done, v.Points)
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-ticker.C:
		}
	}
}
