package costmodel

import (
	"math"
	"testing"
	"time"

	"repro/internal/runspec"
)

func TestErlangC(t *testing.T) {
	// Known value: M/M/1 at ρ=0.5 queues with probability ρ.
	if got := erlangC(1, 0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("erlangC(1, 0.5) = %g, want 0.5", got)
	}
	// c=2, a=1 → P(wait) = 1/3 (standard table value).
	if got := erlangC(2, 1); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("erlangC(2, 1) = %g, want 1/3", got)
	}
	if got := erlangC(4, 0); got != 0 {
		t.Fatalf("zero load must not queue: %g", got)
	}
	// Overload clamps to certainty.
	if got := erlangC(2, 5); got != 1 {
		t.Fatalf("overload must clamp to 1: %g", got)
	}
	// More servers at fixed load → less queueing.
	prev := 1.1
	for c := 2; c <= 8; c++ {
		pw := erlangC(c, 1.8)
		if pw >= prev {
			t.Fatalf("erlangC not decreasing in c: c=%d pw=%g prev=%g", c, pw, prev)
		}
		prev = pw
	}
}

func TestPlanMonotonicAndFeasible(t *testing.T) {
	svc := ServiceStats{MeanNs: 50e6, SCV: 2.0, P99Ns: 200e6} // 50ms mean, heavy tail
	res, err := Plan(PlanInput{RatePerSec: 100, TargetP99: 400 * time.Millisecond}, svc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("plan infeasible: %+v", res)
	}
	// Offered load is 5 erlangs — need more than 5 workers for stability.
	if res.Workers <= 5 {
		t.Fatalf("planned %d workers below offered load", res.Workers)
	}
	if res.Utilization <= 0 || res.Utilization >= 1 {
		t.Fatalf("utilization out of range: %+v", res)
	}
	if res.PredictedP99Ms > 400 {
		t.Fatalf("feasible plan misses target: %+v", res)
	}

	// A stricter target can never need fewer workers.
	tight, err := Plan(PlanInput{RatePerSec: 100, TargetP99: 210 * time.Millisecond}, svc)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Feasible && tight.Workers < res.Workers {
		t.Fatalf("stricter target planned fewer workers: %d < %d", tight.Workers, res.Workers)
	}

	// An impossible target (below the service p99 floor) is infeasible.
	impossible, err := Plan(PlanInput{RatePerSec: 100, TargetP99: 100 * time.Millisecond, MaxWorkers: 64}, svc)
	if err != nil {
		t.Fatal(err)
	}
	if impossible.Feasible {
		t.Fatalf("target below service p99 reported feasible: %+v", impossible)
	}

	// Evaluate at the planned size agrees with the plan.
	ev, err := Evaluate(res.Workers, 100, svc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.PredictedP99Ms-res.PredictedP99Ms) > 1e-9 {
		t.Fatalf("Evaluate disagrees with Plan: %g vs %g", ev.PredictedP99Ms, res.PredictedP99Ms)
	}

	// More workers strictly shrink predicted wait.
	more, err := Evaluate(res.Workers+4, 100, svc)
	if err != nil {
		t.Fatal(err)
	}
	if more.MeanWaitMs > ev.MeanWaitMs {
		t.Fatalf("more workers increased wait: %g > %g", more.MeanWaitMs, ev.MeanWaitMs)
	}
}

func TestPlanInputValidation(t *testing.T) {
	svc := ServiceStats{MeanNs: 1e6}
	if _, err := Plan(PlanInput{RatePerSec: 0, TargetP99: time.Second}, svc); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Plan(PlanInput{RatePerSec: 1, TargetP99: 0}, svc); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := Plan(PlanInput{RatePerSec: 1, TargetP99: time.Second}, ServiceStats{}); err == nil {
		t.Fatal("zero service mean accepted")
	}
	if _, err := Evaluate(0, 1, svc); err == nil {
		t.Fatal("zero workers accepted")
	}
	// Overloaded Evaluate returns an infeasible result, not an error.
	over, err := Evaluate(1, 2000, svc)
	if err != nil {
		t.Fatal(err)
	}
	if over.Feasible || over.Utilization < 1 {
		t.Fatalf("overload not flagged: %+v", over)
	}
}

func TestMixService(t *testing.T) {
	m, err := Fit(synthSamples(9, 0.3, 0.7, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	mix, err := runspec.MixByName(runspec.MixServing)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := MixService(m, mix)
	if err != nil {
		t.Fatal(err)
	}
	if svc.MeanNs <= 0 {
		t.Fatalf("non-positive mean: %+v", svc)
	}
	if svc.P99Ns < svc.MeanNs {
		t.Fatalf("p99 below mean for a heavy-tailed mix: %+v", svc)
	}
	if svc.SCV < 0 {
		t.Fatalf("negative SCV: %+v", svc)
	}
}
