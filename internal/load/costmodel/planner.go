package costmodel

// The capacity planner: an M/G/c queueing approximation over the cost
// model's per-class runtime predictions. For a target arrival rate and
// end-to-end p99 objective it walks the worker count upward until the
// predicted p99 — Erlang-C waiting probability, Allen–Cunneen mean wait
// for general service times, an exponential waiting-tail approximation,
// plus the mix's service-time p99 — meets the objective. The numbers are
// approximations by construction; `vqeload plan -validate` replays the
// mix against a real in-process fleet at the planned size and reports the
// prediction error, which is what makes the analytic answer trustworthy.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/runspec"
)

// ServiceStats summarizes the mix's service-time distribution under the
// model.
type ServiceStats struct {
	// MeanNs is the weighted mean predicted runtime E[S].
	MeanNs float64 `json:"mean_ns"`
	// SCV is the squared coefficient of variation Var[S]/E[S]² — > 1 for
	// the heavy-tailed mixes, which inflates queueing delay beyond M/M/c.
	SCV float64 `json:"scv"`
	// P99Ns is the 99th percentile of the discrete class distribution.
	P99Ns float64 `json:"p99_ns"`
}

// MixService evaluates the model over a mix's weighted classes.
func MixService(m *Model, mix *runspec.Mix) (ServiceStats, error) {
	entries := mix.Entries()
	type wp struct {
		w, s float64
	}
	points := make([]wp, 0, len(entries))
	var mean, m2 float64
	for i := range entries {
		f, err := FeaturesFor(&entries[i].Spec)
		if err != nil {
			return ServiceStats{}, fmt.Errorf("costmodel: mix %q entry %q: %w", mix.Name(), entries[i].Name, err)
		}
		s := m.PredictNs(f)
		w := entries[i].Weight
		mean += w * s
		m2 += w * s * s
		points = append(points, wp{w, s})
	}
	stats := ServiceStats{MeanNs: mean}
	if mean > 0 {
		stats.SCV = math.Max(0, (m2-mean*mean)/(mean*mean))
	}
	// p99 of the discrete class distribution: smallest s with cumulative
	// weight ≥ 0.99.
	for i := 1; i < len(points); i++ {
		for j := i; j > 0 && points[j].s < points[j-1].s; j-- {
			points[j], points[j-1] = points[j-1], points[j]
		}
	}
	cum := 0.0
	for _, p := range points {
		cum += p.w
		stats.P99Ns = p.s
		if cum >= 0.99 {
			break
		}
	}
	return stats, nil
}

// PlanInput is a capacity question.
type PlanInput struct {
	// RatePerSec is the offered arrival rate λ.
	RatePerSec float64
	// TargetP99 is the end-to-end latency objective.
	TargetP99 time.Duration
	// MaxWorkers caps the search (default 256).
	MaxWorkers int
}

// PlanResult is the planner's answer for one worker count.
type PlanResult struct {
	Workers     int     `json:"workers"`
	Feasible    bool    `json:"feasible"`
	Utilization float64 `json:"utilization"`
	// PWait is the Erlang-C probability an arriving job queues.
	PWait          float64 `json:"p_wait"`
	MeanWaitMs     float64 `json:"mean_wait_ms"`
	P99WaitMs      float64 `json:"p99_wait_ms"`
	PredictedP99Ms float64 `json:"predicted_p99_ms"`

	Service ServiceStats `json:"service"`
}

// Plan returns the smallest worker count whose predicted end-to-end p99
// meets the target, or the MaxWorkers result marked infeasible.
func Plan(in PlanInput, svc ServiceStats) (PlanResult, error) {
	if in.RatePerSec <= 0 {
		return PlanResult{}, fmt.Errorf("%w: costmodel: plan rate must be > 0", core.ErrInvalidArgument)
	}
	if in.TargetP99 <= 0 {
		return PlanResult{}, fmt.Errorf("%w: costmodel: plan target p99 must be > 0", core.ErrInvalidArgument)
	}
	if svc.MeanNs <= 0 {
		return PlanResult{}, fmt.Errorf("%w: costmodel: service mean must be > 0", core.ErrInvalidArgument)
	}
	maxWorkers := in.MaxWorkers
	if maxWorkers <= 0 {
		maxWorkers = 256
	}
	lambda := in.RatePerSec / 1e9  // arrivals per ns
	offered := lambda * svc.MeanNs // erlangs
	var last PlanResult
	for c := int(math.Ceil(offered)); c <= maxWorkers; c++ {
		if c < 1 {
			c = 1
		}
		rho := offered / float64(c)
		if rho >= 1 {
			continue
		}
		res := evaluate(c, lambda, rho, svc)
		last = res
		if res.PredictedP99Ms <= float64(in.TargetP99)/1e6 {
			res.Feasible = true
			return res, nil
		}
	}
	return last, nil
}

// Evaluate predicts latency for a fixed worker count (the replay
// validator uses it to score the chosen size without re-searching).
func Evaluate(workers int, ratePerSec float64, svc ServiceStats) (PlanResult, error) {
	if workers < 1 || ratePerSec <= 0 || svc.MeanNs <= 0 {
		return PlanResult{}, fmt.Errorf("%w: costmodel: evaluate needs workers ≥ 1, rate > 0", core.ErrInvalidArgument)
	}
	lambda := ratePerSec / 1e9
	rho := lambda * svc.MeanNs / float64(workers)
	if rho >= 1 {
		return PlanResult{Workers: workers, Utilization: rho, Service: svc}, nil
	}
	res := evaluate(workers, lambda, rho, svc)
	res.Feasible = true
	return res, nil
}

func evaluate(c int, lambda, rho float64, svc ServiceStats) PlanResult {
	pw := erlangC(c, rho*float64(c))
	// Allen–Cunneen M/G/c mean wait: the M/M/c wait scaled by the
	// service-time variability.
	meanWaitNs := pw * (1 + svc.SCV) / 2 * svc.MeanNs / (float64(c) * (1 - rho))
	// Exponential waiting-tail approximation calibrated to the mean:
	// P(W > t) ≈ pw·exp(-t/θ) with θ chosen so E[W] matches.
	p99WaitNs := 0.0
	if pw > 0.01 && meanWaitNs > 0 {
		theta := meanWaitNs / pw
		p99WaitNs = theta * math.Log(pw/0.01)
	}
	return PlanResult{
		Workers:        c,
		Utilization:    rho,
		PWait:          pw,
		MeanWaitMs:     meanWaitNs / 1e6,
		P99WaitMs:      p99WaitNs / 1e6,
		PredictedP99Ms: (p99WaitNs + svc.P99Ns) / 1e6,
		Service:        svc,
	}
}

// erlangC computes the probability of queueing in an M/M/c system with
// offered load a erlangs, via the numerically stable Erlang-B recursion.
func erlangC(c int, a float64) float64 {
	if a <= 0 {
		return 0
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	denom := float64(c) - a*(1-b)
	if denom <= 0 {
		return 1
	}
	pc := float64(c) * b / denom
	return math.Min(1, math.Max(0, pc))
}
