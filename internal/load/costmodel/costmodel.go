// Package costmodel fits and serves a per-spec runtime predictor for VQE
// jobs, and answers capacity questions with it. The model is a log-linear
// regression — log runtime over (qubits, log terms, log iterations) —
// calibrated from short probe runs through the real runspec engine and
// persisted as a JSON profile the same way internal/kernel/calib persists
// kernel-choice profiles: keyed by schema version and GOMAXPROCS, with
// stale profiles rejected at load.
//
// Two consumers share the model: the vqed admission controller prices
// Retry-After quotes with per-spec predictions instead of a global
// average, and the capacity planner (Plan) answers "how many workers for
// N req/s at p99 < X" analytically with an M/G/c approximation that
// `vqeload plan -validate` checks by replaying the mix against a real
// in-process fleet.
package costmodel

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/runspec"
	"repro/internal/state"
)

// SchemaVersion gates persisted profiles; bump on any change to the
// feature vector or regression form.
const SchemaVersion = 1

// Features is the model's per-spec input vector.
type Features struct {
	// Qubits is the simulated register width — runtime is exponential in
	// it, which the log-linear form captures with a linear term.
	Qubits int `json:"qubits"`
	// Terms is the Hamiltonian term count driving each energy evaluation.
	Terms int `json:"terms"`
	// Iters is the expected optimizer-iteration proxy for the algorithm
	// and its bounds — a workload-shape constant, not a measurement.
	Iters int `json:"iters"`
}

// FeaturesFor derives the feature vector of a spec by building its
// molecule and observable (cheap for the serving-mix molecule sizes; the
// result is meant to be cached by spec hash — see Model.Estimator).
func FeaturesFor(spec *runspec.RunSpec) (Features, error) {
	c := *spec
	c.ApplyDefaults()
	m, err := runspec.BuildMolecule(c.Molecule)
	if err != nil {
		return Features{}, err
	}
	h, err := runspec.BuildObservable(m, c.Encoding)
	if err != nil {
		return Features{}, err
	}
	f := Features{Qubits: m.NumSpinOrbitals(), Terms: h.NumTerms()}
	if c.Downfold > 0 && 2*c.Downfold < f.Qubits {
		// Downfolded runs simulate the compressed register; the term count
		// of the full observable stays as a conservative proxy.
		f.Qubits = 2 * c.Downfold
	}
	f.Iters = iterProxy(&c)
	return f, nil
}

// iterProxy maps algorithm bounds to an expected-iteration constant. The
// absolute scale is irrelevant (the fit absorbs it); what matters is that
// specs bounding their optimizers rank below unbounded ones.
func iterProxy(c *runspec.RunSpec) int {
	switch c.Algorithm {
	case runspec.AlgorithmQPE:
		return c.QPE.Ancillas * c.QPE.TrotterSteps
	case runspec.AlgorithmAdapt:
		// Each outer iteration runs a full inner optimization.
		return c.Adapt.MaxIterations * 20
	default:
		if c.Optimizer.MaxIter > 0 {
			return c.Optimizer.MaxIter
		}
		if c.Optimizer.Method == "nelder-mead" {
			return 200
		}
		return 100
	}
}

// Sample is one probe measurement.
type Sample struct {
	Features Features `json:"features"`
	RunNs    int64    `json:"run_ns"`
	Class    string   `json:"class,omitempty"`
}

// Model is the fitted predictor: log(ns) = c0 + c1·qubits + c2·ln(terms)
// + c3·ln(iters).
type Model struct {
	Schema     int       `json:"schema"`
	GoMaxProcs int       `json:"gomaxprocs"`
	CreatedAt  time.Time `json:"created_at"`
	Coef       []float64 `json:"coef"` // length 4
	Samples    int       `json:"samples"`
	// RMSLE is the fit's root-mean-square error in log space — e.g. 0.2
	// means predictions are typically within ±22%.
	RMSLE float64 `json:"rmsle"`
}

// regressors expands a feature vector into the design row.
func regressors(f Features) [4]float64 {
	return [4]float64{1, float64(f.Qubits), math.Log(float64(max(1, f.Terms))), math.Log(float64(max(1, f.Iters)))}
}

// Fit solves the least-squares regression over the samples via the normal
// equations (the design is 4-wide; Gaussian elimination with partial
// pivoting is plenty).
func Fit(samples []Sample) (*Model, error) {
	if len(samples) < 4 {
		return nil, fmt.Errorf("%w: costmodel: need ≥ 4 samples to fit, got %d", core.ErrInvalidArgument, len(samples))
	}
	var xtx [4][5]float64 // augmented [XᵀX | Xᵀy]
	for _, s := range samples {
		if s.RunNs <= 0 {
			return nil, fmt.Errorf("%w: costmodel: non-positive runtime sample", core.ErrInvalidArgument)
		}
		x := regressors(s.Features)
		y := math.Log(float64(s.RunNs))
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				xtx[i][j] += x[i] * x[j]
			}
			xtx[i][4] += x[i] * y
		}
	}
	coef, err := solve4(&xtx)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Schema: SchemaVersion,
		//vqelint:ignore workerssemantics recording the process budget as a profile cache key, not resolving a worker count
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC(),
		Coef:       coef[:],
		Samples:    len(samples),
	}
	var sse float64
	for _, s := range samples {
		d := math.Log(float64(s.RunNs)) - m.logPredict(s.Features)
		sse += d * d
	}
	m.RMSLE = math.Sqrt(sse / float64(len(samples)))
	return m, nil
}

// solve4 solves the 4×4 augmented system in place.
func solve4(a *[4][5]float64) ([4]float64, error) {
	var w [4]float64
	for col := 0; col < 4; col++ {
		pivot := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return w, fmt.Errorf("%w: costmodel: degenerate probe set (feature column %d has no variation)", core.ErrInvalidArgument, col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 5; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	for i := 0; i < 4; i++ {
		w[i] = a[i][4] / a[i][i]
	}
	return w, nil
}

func (m *Model) logPredict(f Features) float64 {
	x := regressors(f)
	sum := 0.0
	for i, c := range m.Coef {
		sum += c * x[i]
	}
	return sum
}

// PredictNs returns the predicted runtime in nanoseconds.
func (m *Model) PredictNs(f Features) float64 { return math.Exp(m.logPredict(f)) }

// Predict returns the predicted runtime as a duration.
func (m *Model) Predict(f Features) time.Duration { return time.Duration(m.PredictNs(f)) }

// EstimateSpec predicts a spec's runtime (features derived on the spot;
// use Estimator for a cached hot-path variant).
func (m *Model) EstimateSpec(spec *runspec.RunSpec) (time.Duration, error) {
	f, err := FeaturesFor(spec)
	if err != nil {
		return 0, err
	}
	return m.Predict(f), nil
}

// Estimator adapts the model to the server.Config.Estimator shape with a
// per-spec-hash feature cache, so admission control pays the molecule
// build once per distinct spec class, not once per rejected request.
func (m *Model) Estimator() func(*runspec.RunSpec) (time.Duration, bool) {
	var mu sync.Mutex
	cache := map[string]time.Duration{}
	return func(spec *runspec.RunSpec) (time.Duration, bool) {
		if spec == nil {
			return 0, false
		}
		key := spec.Hash()
		mu.Lock()
		d, ok := cache[key]
		mu.Unlock()
		if ok {
			return d, true
		}
		est, err := m.EstimateSpec(spec)
		if err != nil {
			return 0, false
		}
		mu.Lock()
		if len(cache) > 4096 { // bound a hostile spec stream
			cache = map[string]time.Duration{}
		}
		cache[key] = est
		mu.Unlock()
		return est, true
	}
}

// Save writes the profile as indented JSON.
func (m *Model) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a profile, rejecting schema or GOMAXPROCS mismatches the
// same way kernel calibration profiles are rejected — a model measured on
// different parallelism predicts a different machine.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := new(Model)
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("costmodel: parse %s: %w", path, err)
	}
	if m.Schema != SchemaVersion {
		return nil, fmt.Errorf("costmodel: %s has schema %d, want %d — re-probe", path, m.Schema, SchemaVersion)
	}
	//vqelint:ignore workerssemantics comparing against the profile's recorded cache key, not resolving a worker count
	if got := runtime.GOMAXPROCS(0); m.GoMaxProcs != got {
		return nil, fmt.Errorf("costmodel: %s was probed at GOMAXPROCS=%d, process has %d — re-probe", path, m.GoMaxProcs, got)
	}
	if len(m.Coef) != 4 {
		return nil, fmt.Errorf("costmodel: %s has %d coefficients, want 4", path, len(m.Coef))
	}
	return m, nil
}

// ProbeOptions tunes calibration runs.
type ProbeOptions struct {
	// Repetitions per entry (default 3); the median is kept so a GC pause
	// or scheduler hiccup cannot skew a class.
	Repetitions int
	// Pool shares one simulation pool across probe runs (nil sizes one
	// per run, like the daemon's workers do).
	Pool *state.Pool
}

// Probe measures each mix entry by running it through the real engine and
// returns one median sample per entry. Entries sharing a canonical hash
// are probed once.
func Probe(ctx context.Context, entries []runspec.MixEntry, opts ProbeOptions) ([]Sample, error) {
	reps := opts.Repetitions
	if reps <= 0 {
		reps = 3
	}
	seen := map[string]bool{}
	var samples []Sample
	for _, e := range entries {
		spec := e.Spec
		hash := spec.Hash()
		if seen[hash] {
			continue
		}
		seen[hash] = true
		f, err := FeaturesFor(&spec)
		if err != nil {
			return nil, fmt.Errorf("costmodel: probe %q: %w", e.Name, err)
		}
		walls := make([]int64, 0, reps)
		for i := 0; i < reps; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := runspec.Run(ctx, &spec, runspec.RunOptions{Pool: opts.Pool})
			if err != nil {
				return nil, fmt.Errorf("costmodel: probe %q: %w", e.Name, err)
			}
			walls = append(walls, res.WallNs)
		}
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		samples = append(samples, Sample{Features: f, RunNs: walls[len(walls)/2], Class: e.Name})
	}
	return samples, nil
}

// DefaultProbeEntries returns the calibration workload: the serving-mix
// classes (deduplicated), which span the feature space the presets
// exercise — 4–8 qubits, 11–361 terms, bounded and unbounded optimizers.
func DefaultProbeEntries() ([]runspec.MixEntry, error) {
	mix, err := runspec.MixByName(runspec.MixServing)
	if err != nil {
		return nil, err
	}
	var entries []runspec.MixEntry
	seen := map[string]bool{}
	for _, e := range mix.Entries() {
		h := e.Spec.Hash()
		if seen[h] {
			continue
		}
		seen[h] = true
		entries = append(entries, e)
	}
	return entries, nil
}

// LoadOrProbe returns the model at path if it is present and valid, else
// probes the default entries, fits, and saves to path (mirroring
// calib.LoadOrMeasure). probed reports whether a measurement ran.
func LoadOrProbe(ctx context.Context, path string, opts ProbeOptions) (m *Model, probed bool, err error) {
	if path != "" {
		if m, err = Load(path); err == nil {
			return m, false, nil
		}
		if !os.IsNotExist(err) {
			return nil, false, err
		}
	}
	entries, err := DefaultProbeEntries()
	if err != nil {
		return nil, false, err
	}
	samples, err := Probe(ctx, entries, opts)
	if err != nil {
		return nil, false, err
	}
	if m, err = Fit(samples); err != nil {
		return nil, false, err
	}
	if path != "" {
		if err := m.Save(path); err != nil {
			return nil, false, err
		}
	}
	return m, true, nil
}
