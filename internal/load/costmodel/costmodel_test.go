package costmodel

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/runspec"
)

// synthSamples generates samples from a known log-linear law so Fit can be
// checked against ground truth.
func synthSamples(c0, c1, c2, c3 float64) []Sample {
	var out []Sample
	for _, q := range []int{4, 6, 8, 10, 12} {
		for _, terms := range []int{20, 100, 400} {
			for _, iters := range []int{50, 200, 800} {
				ln := c0 + c1*float64(q) + c2*math.Log(float64(terms)) + c3*math.Log(float64(iters))
				out = append(out, Sample{
					Features: Features{Qubits: q, Terms: terms, Iters: iters},
					RunNs:    int64(math.Round(math.Exp(ln))),
				})
			}
		}
	}
	return out
}

func TestFitRecoversKnownLaw(t *testing.T) {
	want := [4]float64{10.0, 0.35, 0.8, 0.95}
	m, err := Fit(synthSamples(want[0], want[1], want[2], want[3]))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(m.Coef[i]-want[i]) > 1e-4 {
			t.Fatalf("coef[%d] = %g, want %g (all: %v)", i, m.Coef[i], want[i], m.Coef)
		}
	}
	if m.RMSLE > 1e-4 {
		t.Fatalf("RMSLE %g on noiseless data", m.RMSLE)
	}
	// Prediction at an unseen point interpolates the law.
	f := Features{Qubits: 7, Terms: 150, Iters: 300}
	wantNs := math.Exp(want[0] + want[1]*7 + want[2]*math.Log(150) + want[3]*math.Log(300))
	if got := m.PredictNs(f); math.Abs(got-wantNs)/wantNs > 1e-4 {
		t.Fatalf("PredictNs = %g, want %g", got, wantNs)
	}
}

func TestFitRejectsDegenerate(t *testing.T) {
	if _, err := Fit(nil); !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("empty fit: %v", err)
	}
	// All-identical features make the normal equations singular.
	same := make([]Sample, 8)
	for i := range same {
		same[i] = Sample{Features: Features{Qubits: 4, Terms: 10, Iters: 10}, RunNs: 1000000}
	}
	if _, err := Fit(same); !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("degenerate fit: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := Fit(synthSamples(9, 0.3, 0.7, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cost.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || back.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Fatalf("round trip header mismatch: %+v vs %+v", back, m)
	}
	for i := range m.Coef {
		if back.Coef[i] != m.Coef[i] {
			t.Fatalf("round trip coef mismatch: %v vs %v", back.Coef, m.Coef)
		}
	}

	// A profile from a different machine shape must be rejected, like
	// kernel/calib profiles.
	m2 := *m
	m2.GoMaxProcs = m.GoMaxProcs + 1
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := m2.Save(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("GOMAXPROCS mismatch accepted")
	}
	m3 := *m
	m3.Schema = SchemaVersion + 1
	badSchema := filepath.Join(t.TempDir(), "schema.json")
	if err := m3.Save(badSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badSchema); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestFeaturesForAndEstimator(t *testing.T) {
	spec := runspec.RunSpec{Molecule: runspec.MoleculeSpec{Kind: "h2"}}
	spec.ApplyDefaults()
	f, err := FeaturesFor(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if f.Qubits <= 0 || f.Terms <= 0 || f.Iters <= 0 {
		t.Fatalf("implausible features: %+v", f)
	}

	m, err := Fit(synthSamples(9, 0.3, 0.7, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	est := m.Estimator()
	d1, ok := est(&spec)
	if !ok || d1 <= 0 {
		t.Fatalf("estimator: %v %v", d1, ok)
	}
	// Cached path returns the identical quote.
	if d2, _ := est(&spec); d2 != d1 {
		t.Fatalf("cache changed the quote: %v vs %v", d2, d1)
	}
	bad := runspec.RunSpec{Molecule: runspec.MoleculeSpec{Kind: "no-such-molecule"}}
	if _, ok := est(&bad); ok {
		t.Fatal("estimator claimed success on an invalid spec")
	}
}

func TestProbeAndLoadOrProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe runs real simulations")
	}
	// Two tiny entries, deduped against a repeat.
	entries := []runspec.MixEntry{
		{Name: "h2", Weight: 1, Spec: runspec.RunSpec{Molecule: runspec.MoleculeSpec{Kind: "h2"}}},
		{Name: "h2-again", Weight: 1, Spec: runspec.RunSpec{Molecule: runspec.MoleculeSpec{Kind: "h2"}}},
		{Name: "hub2", Weight: 1, Spec: runspec.RunSpec{Molecule: runspec.MoleculeSpec{Kind: "hubbard", Sites: 2}}},
	}
	samples, err := Probe(context.Background(), entries, ProbeOptions{Repetitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("probe did not dedupe: %d samples", len(samples))
	}
	for _, s := range samples {
		if s.RunNs <= 0 {
			t.Fatalf("non-positive probe runtime: %+v", s)
		}
	}

	path := filepath.Join(t.TempDir(), "cost.json")
	m1, probed, err := LoadOrProbe(context.Background(), path, ProbeOptions{Repetitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Fatal("first LoadOrProbe must probe")
	}
	// Second call must hit the saved profile, not re-probe.
	m2, probed, err := LoadOrProbe(context.Background(), path, ProbeOptions{Repetitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if probed {
		t.Fatal("second LoadOrProbe re-probed instead of loading")
	}
	for i := range m1.Coef {
		if m1.Coef[i] != m2.Coef[i] {
			t.Fatal("LoadOrProbe did not reuse the saved profile")
		}
	}
}
