package load

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/server"
)

// StartLocal boots an in-process vqed daemon on an ephemeral loopback
// port and returns its base URL plus a stop function. This is what lets
// `vqeload run -self` and `vqeload plan -validate` characterize a
// candidate configuration without an external daemon: the planner can
// stand up "a fleet of c workers", replay the mix against it, and tear it
// down, all inside one process.
func StartLocal(cfg server.Config) (string, func() error, error) {
	return StartLocalAt("127.0.0.1:0", cfg)
}

// StartLocalAt is StartLocal on a caller-chosen address — the chaos drill
// uses it to "restart the daemon" on the same base URL its clients are
// already pointed at.
func StartLocalAt(addr string, cfg server.Config) (string, func() error, error) {
	srv, err := server.New(cfg)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		//vqelint:ignore ctxflow teardown on a failed boot; no caller context exists to thread
		_ = srv.Shutdown(context.Background())
		return "", nil, fmt.Errorf("load: listen: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	// serveDone lets stop() join the accept loop: Serve returns once
	// httpSrv.Shutdown closes the listener, so teardown cannot leave the
	// goroutine (or its port) behind.
	serveDone := make(chan struct{})
	go func() {
		_ = httpSrv.Serve(ln)
		close(serveDone)
	}()
	stop := func() error {
		//vqelint:ignore ctxflow stop() outlives any request context; the bound is the local timeout
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainErr := srv.Shutdown(ctx)
		if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) && drainErr == nil {
			drainErr = err
		}
		<-serveDone
		return drainErr
	}
	return "http://" + ln.Addr().String(), stop, nil
}
