// Package density implements a density-matrix simulator with Kraus noise
// channels — the DM-Sim substrate of the NWQ-Sim family (paper ref [7]).
// It provides mixed-state simulation for noise studies at small qubit
// counts (ρ costs 4ⁿ amplitudes), complementing the pure-state engine.
package density

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/pauli"
	"repro/internal/state"
)

// Matrix is an n-qubit density matrix ρ (row-major, dimension 2ⁿ).
type Matrix struct {
	n   int
	dim int
	rho []complex128
}

// New returns ρ = |0…0⟩⟨0…0| on n qubits.
func New(n int) *Matrix {
	dim := core.Dim(n)
	m := &Matrix{n: n, dim: dim, rho: make([]complex128, dim*dim)}
	m.rho[0] = 1
	return m
}

// FromState builds the pure-state density matrix |ψ⟩⟨ψ|.
func FromState(s *state.State) *Matrix {
	m := New(s.NumQubits())
	amps := s.Amplitudes()
	for i := 0; i < m.dim; i++ {
		for j := 0; j < m.dim; j++ {
			m.rho[i*m.dim+j] = amps[i] * cmplx.Conj(amps[j])
		}
	}
	return m
}

// NumQubits returns the register width.
func (m *Matrix) NumQubits() int { return m.n }

// At returns ρ[i][j].
func (m *Matrix) At(i, j int) complex128 { return m.rho[i*m.dim+j] }

// Trace returns Tr ρ (1 for a valid state).
func (m *Matrix) Trace() complex128 {
	var t complex128
	for i := 0; i < m.dim; i++ {
		t += m.rho[i*m.dim+i]
	}
	return t
}

// Purity returns Tr ρ² ∈ (0, 1]; 1 iff pure.
func (m *Matrix) Purity() float64 {
	p := 0.0
	for i := 0; i < m.dim; i++ {
		for j := 0; j < m.dim; j++ {
			a := m.rho[i*m.dim+j]
			b := m.rho[j*m.dim+i]
			p += real(a * b) // Tr ρ² = Σ ρ_ij ρ_ji
		}
	}
	return p
}

// leftMul1Q applies ρ ← (U on qubit q) · ρ.
func (m *Matrix) leftMul1Q(u *linalg.Matrix, q int) {
	u00, u01, u10, u11 := u.At(0, 0), u.At(0, 1), u.At(1, 0), u.At(1, 1)
	half := uint64(m.dim / 2)
	for col := 0; col < m.dim; col++ {
		for rest := uint64(0); rest < half; rest++ {
			i0 := int(core.InsertZeroBit(rest, q))
			i1 := i0 | 1<<uint(q)
			a0 := m.rho[i0*m.dim+col]
			a1 := m.rho[i1*m.dim+col]
			m.rho[i0*m.dim+col] = u00*a0 + u01*a1
			m.rho[i1*m.dim+col] = u10*a0 + u11*a1
		}
	}
}

// rightMulAdj1Q applies ρ ← ρ · (U on qubit q)†.
func (m *Matrix) rightMulAdj1Q(u *linalg.Matrix, q int) {
	// (ρU†)[r][c] = Σ_k ρ[r][k]·conj(U[c][k]).
	c00, c01 := cmplx.Conj(u.At(0, 0)), cmplx.Conj(u.At(0, 1))
	c10, c11 := cmplx.Conj(u.At(1, 0)), cmplx.Conj(u.At(1, 1))
	half := uint64(m.dim / 2)
	for row := 0; row < m.dim; row++ {
		base := row * m.dim
		for rest := uint64(0); rest < half; rest++ {
			j0 := int(core.InsertZeroBit(rest, q))
			j1 := j0 | 1<<uint(q)
			a0 := m.rho[base+j0]
			a1 := m.rho[base+j1]
			m.rho[base+j0] = a0*c00 + a1*c01
			m.rho[base+j1] = a0*c10 + a1*c11
		}
	}
}

// conjugate1Q applies ρ ← U ρ U† for a single-qubit unitary.
func (m *Matrix) conjugate1Q(u *linalg.Matrix, q int) {
	m.leftMul1Q(u, q)
	m.rightMulAdj1Q(u, q)
}

// conjugate2Q applies ρ ← U ρ U† for a two-qubit unitary on (a,b), a =
// high local bit. Implemented via the dense embedding for clarity; the
// density backend targets ≤ ~10 qubits where this is cheap.
func (m *Matrix) conjugate2Q(u4 *linalg.Matrix, a, b int) {
	g := gate.Gate{Kind: gate.Fused2Q, Qubits: []int{a, b}, Matrix: u4}
	full := circuit.EmbedGate(g, m.n)
	rho := linalg.MatrixFrom(m.dim, m.dim, m.rho)
	out := full.Mul(rho).Mul(full.Adjoint())
	copy(m.rho, out.Data)
}

// ApplyGate applies one unitary gate (barrier/identity skipped; other
// non-unitary markers rejected).
func (m *Matrix) ApplyGate(g gate.Gate) error {
	switch g.Kind {
	case gate.Barrier, gate.I:
		return nil
	}
	if !g.IsUnitary() {
		return fmt.Errorf("%w: density backend cannot apply %v (use channels)", core.ErrInvalidArgument, g.Kind)
	}
	for _, q := range g.Qubits {
		if q < 0 || q >= m.n {
			return core.QubitError(q, m.n)
		}
	}
	switch g.Arity() {
	case 1:
		m.conjugate1Q(g.Matrix2(), g.Qubits[0])
	case 2:
		m.conjugate2Q(g.Matrix4(), g.Qubits[0], g.Qubits[1])
	default:
		return core.ErrInvalidArgument
	}
	return nil
}

// Run applies all gates of a circuit, inserting the noise model's
// channels after each gate when model is non-nil.
func (m *Matrix) Run(c *circuit.Circuit, model *NoiseModel) error {
	if c.NumQubits > m.n {
		return core.ErrDimensionMismatch
	}
	for _, g := range c.Gates {
		if err := m.ApplyGate(g); err != nil {
			return err
		}
		if model != nil && g.IsUnitary() && g.Kind != gate.I {
			if err := model.afterGate(m, g); err != nil {
				return err
			}
		}
	}
	return nil
}

// ApplyChannel applies the CPTP map ρ ← Σ K ρ K† for single-qubit Kraus
// operators on qubit q.
func (m *Matrix) ApplyChannel(kraus []*linalg.Matrix, q int) error {
	if q < 0 || q >= m.n {
		return core.QubitError(q, m.n)
	}
	out := make([]complex128, len(m.rho))
	work := &Matrix{n: m.n, dim: m.dim, rho: make([]complex128, len(m.rho))}
	for _, k := range kraus {
		copy(work.rho, m.rho)
		work.leftMul1Q(k, q)
		work.rightMulAdj1Q(k, q)
		for i := range out {
			out[i] += work.rho[i]
		}
	}
	copy(m.rho, out)
	return nil
}

// Expectation returns Tr(ρ·H) for a Pauli-sum observable.
func (m *Matrix) Expectation(op *pauli.Op) float64 {
	total := 0.0
	for _, t := range op.Terms() {
		// Tr(ρP) = Σ_i ⟨i|ρP|i⟩ = Σ_i ρ[i][j]·ph with P|i⟩ = ph|j⟩.
		var acc complex128
		for i := uint64(0); i < uint64(m.dim); i++ {
			j, ph := t.P.ApplyToBasis(i)
			acc += m.rho[int(i)*m.dim+int(j)] * ph
		}
		total += real(t.Coeff * acc)
	}
	return total
}

// Fidelity returns ⟨ψ|ρ|ψ⟩ against a pure state.
func (m *Matrix) Fidelity(s *state.State) float64 {
	amps := s.Amplitudes()
	var acc complex128
	for i := 0; i < m.dim; i++ {
		var row complex128
		for j := 0; j < m.dim; j++ {
			row += m.rho[i*m.dim+j] * amps[j]
		}
		acc += cmplx.Conj(amps[i]) * row
	}
	return real(acc)
}

// Probabilities returns the diagonal of ρ.
func (m *Matrix) Probabilities() []float64 {
	out := make([]float64, m.dim)
	for i := range out {
		out[i] = real(m.rho[i*m.dim+i])
	}
	return out
}

// Noise channel constructors (single qubit).

// DepolarizingKraus returns the depolarizing channel with error
// probability p: ρ → (1−p)ρ + p/3(XρX + YρY + ZρZ).
func DepolarizingKraus(p float64) []*linalg.Matrix {
	if p < 0 || p > 1 {
		panic(core.ErrInvalidArgument)
	}
	k0 := linalg.Identity(2).Scale(complex(math.Sqrt(1-p), 0))
	kx := gate.New(gate.X).Matrix2().Scale(complex(math.Sqrt(p/3), 0))
	ky := gate.New(gate.Y).Matrix2().Scale(complex(math.Sqrt(p/3), 0))
	kz := gate.New(gate.Z).Matrix2().Scale(complex(math.Sqrt(p/3), 0))
	return []*linalg.Matrix{k0, kx, ky, kz}
}

// AmplitudeDampingKraus returns T1 relaxation with decay probability γ.
func AmplitudeDampingKraus(gamma float64) []*linalg.Matrix {
	if gamma < 0 || gamma > 1 {
		panic(core.ErrInvalidArgument)
	}
	k0 := linalg.MatrixFrom(2, 2, []complex128{1, 0, 0, complex(math.Sqrt(1-gamma), 0)})
	k1 := linalg.MatrixFrom(2, 2, []complex128{0, complex(math.Sqrt(gamma), 0), 0, 0})
	return []*linalg.Matrix{k0, k1}
}

// PhaseDampingKraus returns pure dephasing with probability λ.
func PhaseDampingKraus(lambda float64) []*linalg.Matrix {
	if lambda < 0 || lambda > 1 {
		panic(core.ErrInvalidArgument)
	}
	k0 := linalg.MatrixFrom(2, 2, []complex128{1, 0, 0, complex(math.Sqrt(1-lambda), 0)})
	k1 := linalg.MatrixFrom(2, 2, []complex128{0, 0, 0, complex(math.Sqrt(lambda), 0)})
	return []*linalg.Matrix{k0, k1}
}

// BitFlipKraus returns the bit-flip channel with probability p.
func BitFlipKraus(p float64) []*linalg.Matrix {
	if p < 0 || p > 1 {
		panic(core.ErrInvalidArgument)
	}
	k0 := linalg.Identity(2).Scale(complex(math.Sqrt(1-p), 0))
	k1 := gate.New(gate.X).Matrix2().Scale(complex(math.Sqrt(p), 0))
	return []*linalg.Matrix{k0, k1}
}

// NoiseModel attaches per-gate noise: after every 1-qubit gate each touched
// qubit passes through OneQubit channels; after every 2-qubit gate,
// TwoQubit channels (applied per touched qubit).
type NoiseModel struct {
	OneQubit [][]*linalg.Matrix
	TwoQubit [][]*linalg.Matrix
}

// DepolarizingModel is the standard uniform model with separate 1q/2q
// error rates.
func DepolarizingModel(p1, p2 float64) *NoiseModel {
	return &NoiseModel{
		OneQubit: [][]*linalg.Matrix{DepolarizingKraus(p1)},
		TwoQubit: [][]*linalg.Matrix{DepolarizingKraus(p2)},
	}
}

func (nm *NoiseModel) afterGate(m *Matrix, g gate.Gate) error {
	channels := nm.OneQubit
	if g.Arity() == 2 {
		channels = nm.TwoQubit
	}
	for _, ch := range channels {
		for _, q := range g.Qubits {
			if err := m.ApplyChannel(ch, q); err != nil {
				return err
			}
		}
	}
	return nil
}
