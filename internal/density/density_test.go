package density

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/pauli"
	"repro/internal/state"
)

func TestNewIsPureZero(t *testing.T) {
	m := New(2)
	if !core.AlmostEqualC(m.Trace(), 1, 1e-12) {
		t.Error("trace != 1")
	}
	if math.Abs(m.Purity()-1) > 1e-12 {
		t.Error("purity != 1")
	}
	if m.At(0, 0) != 1 {
		t.Error("not |00⟩⟨00|")
	}
}

func TestUnitaryEvolutionMatchesStateVector(t *testing.T) {
	c := circuit.New(3).H(0).CX(0, 1).RY(0.7, 2).CZ(1, 2).T(0)
	m := New(3)
	if err := m.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	s := state.New(3, state.Options{})
	s.Run(c)
	ref := FromState(s)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if !core.AlmostEqualC(m.At(i, j), ref.At(i, j), 1e-10) {
				t.Fatalf("ρ[%d][%d]: %v vs %v", i, j, m.At(i, j), ref.At(i, j))
			}
		}
	}
	if math.Abs(m.Purity()-1) > 1e-10 {
		t.Error("unitary evolution broke purity")
	}
}

func TestExpectationMatchesStateVector(t *testing.T) {
	c := circuit.New(2).H(0).CX(0, 1).RZ(0.3, 1)
	op := pauli.NewOp().Add(pauli.MustParse("ZZ"), 0.7).Add(pauli.MustParse("XI"), -0.2)
	m := New(2)
	if err := m.Run(c, nil); err != nil {
		t.Fatal(err)
	}
	s := state.New(2, state.Options{})
	s.Run(c)
	want := pauli.Expectation(s, op, pauli.ExpectationOptions{})
	if got := m.Expectation(op); math.Abs(got-want) > 1e-10 {
		t.Errorf("Tr(ρH) = %v, want %v", got, want)
	}
}

func TestAllChannelsTracePreserving(t *testing.T) {
	check := func(name string, kraus []*linalg.Matrix) {
		m := New(2)
		m.ApplyGate(gate.New(gate.H, 0))
		m.ApplyGate(gate.New(gate.CX, 0, 1))
		if err := m.ApplyChannel(kraus, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !core.AlmostEqualC(m.Trace(), 1, 1e-10) {
			t.Errorf("%s: trace %v", name, m.Trace())
		}
	}
	check("depolarizing", DepolarizingKraus(0.2))
	check("amplitude-damping", AmplitudeDampingKraus(0.3))
	check("phase-damping", PhaseDampingKraus(0.25))
	check("bit-flip", BitFlipKraus(0.15))
}

func TestDepolarizingReducesPurity(t *testing.T) {
	m := New(1)
	m.ApplyGate(gate.New(gate.H, 0))
	before := m.Purity()
	m.ApplyChannel(DepolarizingKraus(0.2), 0)
	if m.Purity() >= before {
		t.Errorf("purity did not drop: %v → %v", before, m.Purity())
	}
}

func TestFullDepolarizationIsMaximallyMixed(t *testing.T) {
	m := New(1)
	m.ApplyGate(gate.New(gate.H, 0))
	// p = 3/4 gives the fully depolarizing channel.
	m.ApplyChannel(DepolarizingKraus(0.75), 0)
	if !core.AlmostEqualC(m.At(0, 0), 0.5, 1e-10) || !core.AlmostEqualC(m.At(1, 1), 0.5, 1e-10) {
		t.Errorf("not maximally mixed: %v, %v", m.At(0, 0), m.At(1, 1))
	}
	if math.Abs(m.Purity()-0.5) > 1e-10 {
		t.Errorf("purity %v, want 0.5", m.Purity())
	}
}

func TestAmplitudeDampingRelaxesToGround(t *testing.T) {
	m := New(1)
	m.ApplyGate(gate.New(gate.X, 0)) // |1⟩
	for i := 0; i < 60; i++ {
		m.ApplyChannel(AmplitudeDampingKraus(0.2), 0)
	}
	if real(m.At(0, 0)) < 0.999 {
		t.Errorf("did not relax to |0⟩: P0 = %v", real(m.At(0, 0)))
	}
}

func TestPhaseDampingKillsCoherence(t *testing.T) {
	m := New(1)
	m.ApplyGate(gate.New(gate.H, 0))
	offBefore := m.At(0, 1)
	for i := 0; i < 50; i++ {
		m.ApplyChannel(PhaseDampingKraus(0.3), 0)
	}
	if real(m.At(0, 0)) < 0.49 || real(m.At(1, 1)) < 0.49 {
		t.Error("populations changed under pure dephasing")
	}
	// ρ01 decays by √(1−λ) per application: (0.7)^25 ≈ 1.3e-4 remains.
	if cabs(m.At(0, 1)) > 1e-3*cabs(offBefore) {
		t.Errorf("coherence survived: %v", m.At(0, 1))
	}
}

func cabs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

func TestNoiseModelDegradesFidelity(t *testing.T) {
	c := circuit.New(2).H(0).CX(0, 1)
	ideal := state.New(2, state.Options{})
	ideal.Run(c)

	noiseless := New(2)
	noiseless.Run(c, nil)
	if f := noiseless.Fidelity(ideal); math.Abs(f-1) > 1e-10 {
		t.Fatalf("noiseless fidelity %v", f)
	}

	noisy := New(2)
	if err := noisy.Run(c, DepolarizingModel(0.01, 0.05)); err != nil {
		t.Fatal(err)
	}
	f := noisy.Fidelity(ideal)
	if f >= 1-1e-6 || f < 0.8 {
		t.Errorf("noisy Bell fidelity %v outside (0.8, 1)", f)
	}
	if !core.AlmostEqualC(noisy.Trace(), 1, 1e-9) {
		t.Error("noise broke trace")
	}
}

func TestNoiseScalingMonotone(t *testing.T) {
	// Higher error rate → lower fidelity (ablation check).
	c := circuit.New(2).H(0).CX(0, 1).H(0).CX(0, 1)
	ideal := state.New(2, state.Options{})
	ideal.Run(c)
	prev := 1.0
	for _, p := range []float64{0.001, 0.01, 0.05} {
		m := New(2)
		m.Run(c, DepolarizingModel(p, p*2))
		f := m.Fidelity(ideal)
		if f >= prev {
			t.Errorf("fidelity not monotone: p=%v f=%v prev=%v", p, f, prev)
		}
		prev = f
	}
}

func TestRejectsMeasureGate(t *testing.T) {
	m := New(1)
	if err := m.ApplyGate(gate.New(gate.Measure, 0)); err == nil {
		t.Error("measure accepted")
	}
}

func TestProbabilitiesDiagonal(t *testing.T) {
	m := New(2)
	m.ApplyGate(gate.New(gate.H, 0))
	probs := m.Probabilities()
	if math.Abs(probs[0]-0.5) > 1e-12 || math.Abs(probs[1]-0.5) > 1e-12 {
		t.Errorf("probs %v", probs)
	}
}

func TestDensityAccessors(t *testing.T) {
	m := New(3)
	if m.NumQubits() != 3 {
		t.Error("NumQubits")
	}
	s := state.New(3, state.Options{})
	if f := FromState(s).Fidelity(s); math.Abs(f-1) > 1e-12 {
		t.Errorf("self fidelity %v", f)
	}
}
