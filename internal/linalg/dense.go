// Package linalg provides the dense and sparse complex linear algebra the
// simulator stack is built on: matrices, Kronecker products, Hermitian
// eigensolvers (Jacobi for dense, Lanczos for sparse), and matrix
// exponentials. Everything is stdlib-only and sized for quantum registers
// of up to ~20 qubits of dense work and ~24 qubits of sparse work.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"

	"repro/internal/core"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Errorf("%w: negative matrix dimension", core.ErrInvalidArgument))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// MatrixFrom builds a matrix from a row-major slice literal. It panics if
// len(data) != rows*cols.
func MatrixFrom(rows, cols int, data []complex128) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Errorf("%w: data length does not match matrix shape", core.ErrDimensionMismatch))
	}
	d := make([]complex128, len(data))
	copy(d, data)
	return &Matrix{Rows: rows, Cols: cols, Data: d}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return MatrixFrom(m.Rows, m.Cols, m.Data)
}

// Add returns m + o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.mustSameShape(o)
	r := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] + o.Data[i]
	}
	return r
}

// Sub returns m - o.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.mustSameShape(o)
	r := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] - o.Data[i]
	}
	return r
}

// Scale returns c*m.
func (m *Matrix) Scale(c complex128) *Matrix {
	r := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = c * m.Data[i]
	}
	return r
}

// Mul returns the matrix product m·o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(core.ErrDimensionMismatch)
	}
	r := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			row := o.Data[k*o.Cols:]
			out := r.Data[i*o.Cols:]
			for j := 0; j < o.Cols; j++ {
				out[j] += a * row[j]
			}
		}
	}
	return r
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v []complex128) []complex128 {
	if m.Cols != len(v) {
		panic(core.ErrDimensionMismatch)
	}
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s complex128
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Adjoint returns the conjugate transpose m†.
func (m *Matrix) Adjoint() *Matrix {
	r := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r.Data[j*m.Rows+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
	return r
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	r := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return r
}

// Trace returns the sum of diagonal entries of a square matrix.
func (m *Matrix) Trace() complex128 {
	if m.Rows != m.Cols {
		panic(core.ErrDimensionMismatch)
	}
	var t complex128
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// Kron returns the Kronecker product m ⊗ o.
func (m *Matrix) Kron(o *Matrix) *Matrix {
	r := NewMatrix(m.Rows*o.Rows, m.Cols*o.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			a := m.Data[i*m.Cols+j]
			if a == 0 {
				continue
			}
			for p := 0; p < o.Rows; p++ {
				for q := 0; q < o.Cols; q++ {
					r.Data[(i*o.Rows+p)*r.Cols+(j*o.Cols+q)] = a * o.Data[p*o.Cols+q]
				}
			}
		}
	}
	return r
}

// Equal reports element-wise equality within tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if !core.AlmostEqualC(m.Data[i], o.Data[i], tol) {
			return false
		}
	}
	return true
}

// EqualUpToPhase reports whether m == e^{iφ}·o for some global phase φ.
func (m *Matrix) EqualUpToPhase(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	var phase complex128
	for i := range m.Data {
		if cmplx.Abs(o.Data[i]) > tol {
			phase = m.Data[i] / o.Data[i]
			break
		}
	}
	if phase == 0 {
		return m.Equal(o, tol)
	}
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	return m.Equal(o.Scale(phase), tol)
}

// IsUnitary reports whether m†m == I within tol.
func (m *Matrix) IsUnitary(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	return m.Adjoint().Mul(m).Equal(Identity(m.Rows), tol)
}

// IsHermitian reports whether m == m† within tol.
func (m *Matrix) IsHermitian(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i; j < m.Cols; j++ {
			if !core.AlmostEqualC(m.At(i, j), cmplx.Conj(m.At(j, i)), tol) {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest element modulus.
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders a compact human-readable form (for tests and debugging).
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&b, "(%6.3f%+6.3fi) ", real(v), imag(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (m *Matrix) mustSameShape(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(core.ErrDimensionMismatch)
	}
}

// Expm returns e^m for a square matrix via scaling-and-squaring with a
// Taylor series. Intended for the small (≤ 2^10) matrices appearing in
// gate synthesis, Trotter checks, and downfolding; not a general-purpose
// Padé implementation.
func Expm(m *Matrix) *Matrix {
	if m.Rows != m.Cols {
		panic(core.ErrDimensionMismatch)
	}
	norm := m.MaxAbs() * float64(m.Rows)
	s := 0
	for norm > 0.5 {
		norm /= 2
		s++
	}
	scaled := m.Scale(complex(math.Pow(2, -float64(s)), 0))
	sum := Identity(m.Rows)
	term := Identity(m.Rows)
	for k := 1; k <= 24; k++ {
		term = term.Mul(scaled).Scale(complex(1/float64(k), 0))
		sum = sum.Add(term)
		if term.MaxAbs() < 1e-16 {
			break
		}
	}
	for i := 0; i < s; i++ {
		sum = sum.Mul(sum)
	}
	return sum
}

// VecDot returns ⟨a|b⟩ = Σ conj(a_i)·b_i.
//
//vqesim:hotpath
func VecDot(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic(core.ErrDimensionMismatch)
	}
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}

// VecNorm returns the Euclidean norm of v.
//
//vqesim:hotpath
func VecNorm(v []complex128) float64 {
	s := 0.0
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}

// VecScale multiplies v in place by c and returns it.
//
//vqesim:hotpath
func VecScale(v []complex128, c complex128) []complex128 {
	for i := range v {
		v[i] *= c
	}
	return v
}

// VecAXPY performs y += a·x in place and returns y.
//
//vqesim:hotpath
func VecAXPY(a complex128, x, y []complex128) []complex128 {
	if len(x) != len(y) {
		panic(core.ErrDimensionMismatch)
	}
	for i := range x {
		y[i] += a * x[i]
	}
	return y
}
