package linalg

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestSparseBuildAndMulVec(t *testing.T) {
	b := NewSparseBuilder(3)
	b.Add(0, 0, 2)
	b.Add(0, 2, 1i)
	b.Add(2, 1, -1)
	b.Add(0, 0, 3) // duplicate, summed
	s := b.Build()
	if s.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", s.NNZ())
	}
	y := s.MulVec([]complex128{1, 2, 3})
	if y[0] != 5+3i || y[1] != 0 || y[2] != -2 {
		t.Errorf("y = %v", y)
	}
}

func TestSparseDropsZero(t *testing.T) {
	b := NewSparseBuilder(2)
	b.Add(0, 0, 1)
	b.Add(0, 0, -1)
	b.Add(1, 1, 1e-20)
	s := b.Build()
	if s.NNZ() != 0 {
		t.Errorf("expected all entries dropped, nnz=%d", s.NNZ())
	}
}

func TestSparseDense(t *testing.T) {
	b := NewSparseBuilder(2)
	b.Add(0, 1, 7)
	b.Add(1, 0, -7i)
	d := b.Build().Dense()
	if d.At(0, 1) != 7 || d.At(1, 0) != -7i || d.At(0, 0) != 0 {
		t.Error("dense conversion wrong")
	}
}

func TestSparseAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewSparseBuilder(2).Add(2, 0, 1)
}

func buildHermitianSparse(n int, seed uint64) *Sparse {
	rng := core.NewRNG(seed)
	b := NewSparseBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, complex(rng.NormFloat64(), 0))
		// A few off-diagonal couplings per row.
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			b.Add(i, j, v)
			b.Add(j, i, complex(real(v), -imag(v)))
		}
	}
	return b.Build()
}

func TestLanczosMatchesJacobi(t *testing.T) {
	for _, n := range []int{4, 16, 40} {
		s := buildHermitianSparse(n, uint64(n))
		eLanczos, vec, err := LanczosGround(s, LanczosOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		res, err := EighJacobi(s.Dense())
		if err != nil {
			t.Fatalf("n=%d jacobi: %v", n, err)
		}
		if math.Abs(eLanczos-res.Values[0]) > 1e-7 {
			t.Errorf("n=%d: lanczos %v vs jacobi %v", n, eLanczos, res.Values[0])
		}
		// Residual ‖Hv − Ev‖ small.
		hv := s.MulVec(vec)
		VecAXPY(complex(-eLanczos, 0), vec, hv)
		if VecNorm(hv) > 1e-5 {
			t.Errorf("n=%d: residual %v", n, VecNorm(hv))
		}
	}
}

func TestLanczosDiagonal(t *testing.T) {
	b := NewSparseBuilder(100)
	for i := 0; i < 100; i++ {
		b.Add(i, i, complex(float64(i)-37.5, 0))
	}
	e, _, err := LanczosGround(b.Build(), LanczosOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e+37.5) > 1e-8 {
		t.Errorf("ground %v, want -37.5", e)
	}
}

func TestLanczosOneByOne(t *testing.T) {
	b := NewSparseBuilder(1)
	b.Add(0, 0, -3)
	e, v, err := LanczosGround(b.Build(), LanczosOptions{})
	if err != nil || math.Abs(e+3) > 1e-12 || len(v) != 1 {
		t.Errorf("e=%v v=%v err=%v", e, v, err)
	}
}

func TestLanczosDegenerate(t *testing.T) {
	// Matrix with a doubly-degenerate ground state still converges.
	b := NewSparseBuilder(4)
	b.Add(0, 0, -1)
	b.Add(1, 1, -1)
	b.Add(2, 2, 1)
	b.Add(3, 3, 2)
	e, _, err := LanczosGround(b.Build(), LanczosOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e+1) > 1e-8 {
		t.Errorf("ground %v, want -1", e)
	}
}

func TestSparseApplyInterface(t *testing.T) {
	var op MatVecer = buildHermitianSparse(8, 3)
	if op.Dim() != 8 {
		t.Error("dim wrong")
	}
	dst := make([]complex128, 8)
	src := make([]complex128, 8)
	src[0] = 1
	op.Apply(dst, src)
}
