package linalg

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestEighDiagonal(t *testing.T) {
	m := MatrixFrom(3, 3, []complex128{
		3, 0, 0,
		0, -1, 0,
		0, 0, 2,
	})
	res, err := EighJacobi(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 2, 3}
	for i, w := range want {
		if math.Abs(res.Values[i]-w) > 1e-10 {
			t.Errorf("eig[%d]=%v want %v", i, res.Values[i], w)
		}
	}
}

func TestEighPauliX(t *testing.T) {
	res, err := EighJacobi(pauliX())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]+1) > 1e-10 || math.Abs(res.Values[1]-1) > 1e-10 {
		t.Errorf("X eigenvalues %v, want [-1, 1]", res.Values)
	}
}

func TestEighComplexHermitian(t *testing.T) {
	// H = [[1, i],[−i, 1]] has eigenvalues 0 and 2.
	m := MatrixFrom(2, 2, []complex128{1, 1i, -1i, 1})
	res, err := EighJacobi(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]) > 1e-10 || math.Abs(res.Values[1]-2) > 1e-10 {
		t.Errorf("eigenvalues %v, want [0, 2]", res.Values)
	}
}

func TestEighEigenvectorResidual(t *testing.T) {
	// Random-ish 6×6 Hermitian matrix; verify H·v = λ·v for all pairs.
	rng := core.NewRNG(11)
	n := 6
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, complex(rng.NormFloat64(), 0))
		for j := i + 1; j < n; j++ {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			m.Set(i, j, v)
			m.Set(j, i, complex(real(v), -imag(v)))
		}
	}
	res, err := EighJacobi(m)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		v := make([]complex128, n)
		for i := 0; i < n; i++ {
			v[i] = res.Vectors.At(i, j)
		}
		hv := m.MulVec(v)
		for i := 0; i < n; i++ {
			want := complex(res.Values[j], 0) * v[i]
			if !core.AlmostEqualC(hv[i], want, 1e-8) {
				t.Fatalf("residual too large for pair %d: %v vs %v", j, hv[i], want)
			}
		}
	}
	// Eigenvalues ascending.
	for j := 1; j < n; j++ {
		if res.Values[j] < res.Values[j-1]-1e-12 {
			t.Error("eigenvalues not sorted")
		}
	}
	// Trace preserved.
	sum := 0.0
	for _, v := range res.Values {
		sum += v
	}
	if math.Abs(sum-real(m.Trace())) > 1e-8 {
		t.Errorf("trace %v vs eigenvalue sum %v", real(m.Trace()), sum)
	}
}

func TestEighRejectsNonHermitian(t *testing.T) {
	m := MatrixFrom(2, 2, []complex128{0, 1, 0, 0})
	if _, err := EighJacobi(m); err == nil {
		t.Error("expected error for non-Hermitian input")
	}
}

func TestEighRejectsNonSquare(t *testing.T) {
	if _, err := EighJacobi(NewMatrix(2, 3)); err == nil {
		t.Error("expected error for non-square input")
	}
}

func TestGroundState(t *testing.T) {
	m := MatrixFrom(2, 2, []complex128{2, 0, 0, -5})
	e, v, err := GroundState(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e+5) > 1e-10 {
		t.Errorf("ground energy %v", e)
	}
	if math.Abs(real(v[1])*real(v[1])+imag(v[1])*imag(v[1])-1) > 1e-10 {
		t.Errorf("ground vector %v", v)
	}
}
