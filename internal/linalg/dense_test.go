package linalg

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func pauliX() *Matrix { return MatrixFrom(2, 2, []complex128{0, 1, 1, 0}) }
func pauliY() *Matrix { return MatrixFrom(2, 2, []complex128{0, -1i, 1i, 0}) }
func pauliZ() *Matrix { return MatrixFrom(2, 2, []complex128{1, 0, 0, -1}) }
func hadamard() *Matrix {
	s := complex(1/math.Sqrt2, 0)
	return MatrixFrom(2, 2, []complex128{s, s, s, -s})
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("I(%d,%d)=%v", i, j, id.At(i, j))
			}
		}
	}
}

func TestMatrixFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MatrixFrom(2, 2, []complex128{1})
}

func TestMulIdentity(t *testing.T) {
	x := pauliX()
	if !x.Mul(Identity(2)).Equal(x, 1e-12) || !Identity(2).Mul(x).Equal(x, 1e-12) {
		t.Error("multiplying by identity changed matrix")
	}
}

func TestPauliAlgebra(t *testing.T) {
	x, y, z := pauliX(), pauliY(), pauliZ()
	// XY = iZ
	if !x.Mul(y).Equal(z.Scale(1i), 1e-12) {
		t.Error("XY != iZ")
	}
	// YX = -iZ
	if !y.Mul(x).Equal(z.Scale(-1i), 1e-12) {
		t.Error("YX != -iZ")
	}
	// X² = I
	if !x.Mul(x).Equal(Identity(2), 1e-12) {
		t.Error("X² != I")
	}
}

func TestAdjoint(t *testing.T) {
	m := MatrixFrom(2, 2, []complex128{1 + 2i, 3, 4i, 5})
	a := m.Adjoint()
	if a.At(0, 0) != 1-2i || a.At(0, 1) != -4i || a.At(1, 0) != 3 || a.At(1, 1) != 5 {
		t.Errorf("adjoint wrong: %v", a)
	}
}

func TestTranspose(t *testing.T) {
	m := MatrixFrom(2, 3, []complex128{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Error("transpose wrong")
	}
}

func TestTrace(t *testing.T) {
	m := MatrixFrom(2, 2, []complex128{1, 9, 9, 2i})
	if m.Trace() != 1+2i {
		t.Errorf("trace = %v", m.Trace())
	}
}

func TestKronDimensions(t *testing.T) {
	k := pauliX().Kron(Identity(2))
	if k.Rows != 4 || k.Cols != 4 {
		t.Fatal("kron shape wrong")
	}
	// X⊗I acting on |00⟩ (index 0) gives |10⟩ (index 2).
	v := []complex128{1, 0, 0, 0}
	out := k.MulVec(v)
	if out[2] != 1 {
		t.Errorf("X⊗I|00⟩ = %v", out)
	}
}

func TestKronMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	a, b, c, d := pauliX(), pauliY(), pauliZ(), hadamard()
	lhs := a.Kron(b).Mul(c.Kron(d))
	rhs := a.Mul(c).Kron(b.Mul(d))
	if !lhs.Equal(rhs, 1e-12) {
		t.Error("Kronecker mixed-product identity fails")
	}
}

func TestIsUnitary(t *testing.T) {
	if !hadamard().IsUnitary(1e-12) || !pauliY().IsUnitary(1e-12) {
		t.Error("H and Y should be unitary")
	}
	if MatrixFrom(2, 2, []complex128{1, 1, 0, 1}).IsUnitary(1e-12) {
		t.Error("shear is not unitary")
	}
}

func TestIsHermitian(t *testing.T) {
	if !pauliY().IsHermitian(1e-12) {
		t.Error("Y should be Hermitian")
	}
	if MatrixFrom(2, 2, []complex128{0, 1i, 1i, 0}).IsHermitian(1e-12) {
		t.Error("matrix should not be Hermitian")
	}
}

func TestEqualUpToPhase(t *testing.T) {
	h := hadamard()
	phased := h.Scale(cmplx.Exp(0.7i))
	if !h.EqualUpToPhase(phased, 1e-12) {
		t.Error("phase-equal matrices not detected")
	}
	if h.EqualUpToPhase(pauliX(), 1e-12) {
		t.Error("H and X are not phase-equal")
	}
}

func TestExpmPauliX(t *testing.T) {
	// e^{-iθX/2} = cos(θ/2)I - i sin(θ/2)X (RX gate).
	theta := 0.731
	arg := pauliX().Scale(complex(0, -theta/2))
	got := Expm(arg)
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	want := MatrixFrom(2, 2, []complex128{
		complex(c, 0), complex(0, -s),
		complex(0, -s), complex(c, 0),
	})
	if !got.Equal(want, 1e-10) {
		t.Errorf("Expm RX mismatch:\n%v\nwant\n%v", got, want)
	}
}

func TestExpmZero(t *testing.T) {
	if !Expm(NewMatrix(3, 3)).Equal(Identity(3), 1e-12) {
		t.Error("e^0 != I")
	}
}

func TestExpmAntiHermitianIsUnitary(t *testing.T) {
	// e^{iH} for Hermitian H must be unitary.
	h := MatrixFrom(2, 2, []complex128{0.3, 0.5 - 0.2i, 0.5 + 0.2i, -0.7})
	u := Expm(h.Scale(1i))
	if !u.IsUnitary(1e-10) {
		t.Error("exp of anti-Hermitian not unitary")
	}
}

func TestVecOps(t *testing.T) {
	a := []complex128{1, 1i}
	b := []complex128{1i, 1}
	// ⟨a|b⟩ = conj(1)·i + conj(i)·1 = i − i = 0
	if d := VecDot(a, b); d != 0 {
		t.Errorf("dot = %v", d)
	}
	if n := VecNorm(a); math.Abs(n-math.Sqrt2) > 1e-12 {
		t.Errorf("norm = %v", n)
	}
	y := []complex128{0, 0}
	VecAXPY(2, a, y)
	if y[0] != 2 || y[1] != 2i {
		t.Errorf("axpy = %v", y)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	f := func(rawI [4]int16, vrI [2]int16) bool {
		var raw [4]float64
		for i, x := range rawI {
			raw[i] = float64(x) / 1000
		}
		m := MatrixFrom(2, 2, []complex128{
			complex(raw[0], raw[1]), complex(raw[2], raw[3]),
			complex(raw[1], raw[2]), complex(raw[3], raw[0]),
		})
		v := []complex128{complex(float64(vrI[0])/1000, 0), complex(float64(vrI[1])/1000, 0)}
		got := m.MulVec(v)
		col := MatrixFrom(2, 1, v)
		want := m.Mul(col)
		return core2(got[0], want.At(0, 0)) && core2(got[1], want.At(1, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func core2(a, b complex128) bool {
	return cmplx.Abs(a-b) < 1e-9
}

func TestAddSubScale(t *testing.T) {
	x := pauliX()
	if !x.Add(x).Equal(x.Scale(2), 1e-12) {
		t.Error("X+X != 2X")
	}
	if !x.Sub(x).Equal(NewMatrix(2, 2), 1e-12) {
		t.Error("X-X != 0")
	}
}

func TestMaxAbs(t *testing.T) {
	m := MatrixFrom(2, 2, []complex128{1, -3i, 2, 0})
	if m.MaxAbs() != 3 {
		t.Errorf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestStringDoesNotCrash(t *testing.T) {
	if s := pauliY().String(); len(s) == 0 {
		t.Error("empty string")
	}
}
