package linalg

import (
	"math"
	"sort"

	"repro/internal/core"
)

// Sparse is a compressed-sparse-row complex matrix, the workhorse for
// Hamiltonians too large to store densely (FCI matrices, Pauli sums on
// 14–24 qubits).
type Sparse struct {
	N      int // square dimension
	RowPtr []int
	ColIdx []int
	Vals   []complex128
}

// coo is a temporary coordinate-format entry used while building.
type coo struct {
	r, c int
	v    complex128
}

// SparseBuilder accumulates entries (duplicates are summed) and produces a
// CSR matrix.
type SparseBuilder struct {
	n       int
	entries []coo
}

// NewSparseBuilder returns a builder for an n×n matrix.
func NewSparseBuilder(n int) *SparseBuilder {
	return &SparseBuilder{n: n}
}

// Add accumulates v into entry (r,c).
func (b *SparseBuilder) Add(r, c int, v complex128) {
	if r < 0 || r >= b.n || c < 0 || c >= b.n {
		panic(core.ErrDimensionMismatch)
	}
	if v == 0 {
		return
	}
	b.entries = append(b.entries, coo{r, c, v})
}

// Build sorts, merges duplicates, drops negligible entries, and returns
// the CSR matrix.
func (b *SparseBuilder) Build() *Sparse {
	sort.Slice(b.entries, func(i, j int) bool {
		if b.entries[i].r != b.entries[j].r {
			return b.entries[i].r < b.entries[j].r
		}
		return b.entries[i].c < b.entries[j].c
	})
	s := &Sparse{N: b.n, RowPtr: make([]int, b.n+1)}
	for i := 0; i < len(b.entries); {
		j := i
		v := complex128(0)
		for j < len(b.entries) && b.entries[j].r == b.entries[i].r && b.entries[j].c == b.entries[i].c {
			v += b.entries[j].v
			j++
		}
		if math.Hypot(real(v), imag(v)) > core.CoeffEps {
			s.ColIdx = append(s.ColIdx, b.entries[i].c)
			s.Vals = append(s.Vals, v)
			s.RowPtr[b.entries[i].r+1]++
		}
		i = j
	}
	for r := 0; r < b.n; r++ {
		s.RowPtr[r+1] += s.RowPtr[r]
	}
	return s
}

// NNZ returns the number of stored nonzeros.
func (s *Sparse) NNZ() int { return len(s.Vals) }

// MulVec computes y = s·x.
func (s *Sparse) MulVec(x []complex128) []complex128 {
	y := make([]complex128, s.N)
	s.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = s·x into a caller-provided buffer.
func (s *Sparse) MulVecTo(y, x []complex128) {
	if len(x) != s.N || len(y) != s.N {
		panic(core.ErrDimensionMismatch)
	}
	for r := 0; r < s.N; r++ {
		var acc complex128
		for k := s.RowPtr[r]; k < s.RowPtr[r+1]; k++ {
			acc += s.Vals[k] * x[s.ColIdx[k]]
		}
		y[r] = acc
	}
}

// Dense expands the matrix to dense form (small systems only).
func (s *Sparse) Dense() *Matrix {
	m := NewMatrix(s.N, s.N)
	for r := 0; r < s.N; r++ {
		for k := s.RowPtr[r]; k < s.RowPtr[r+1]; k++ {
			m.Set(r, s.ColIdx[k], s.Vals[k])
		}
	}
	return m
}

// MatVecer is any operator that can apply itself to a vector; both *Sparse
// and matrix-free Hamiltonians satisfy it.
type MatVecer interface {
	Dim() int
	Apply(dst, src []complex128)
}

// Dim implements MatVecer.
func (s *Sparse) Dim() int { return s.N }

// Apply implements MatVecer.
func (s *Sparse) Apply(dst, src []complex128) { s.MulVecTo(dst, src) }

// LanczosOptions tunes the iterative ground-state solver.
type LanczosOptions struct {
	MaxIter int     // Krylov dimension cap (default 200)
	Tol     float64 // eigenvalue convergence tolerance (default 1e-10)
	Seed    uint64  // starting-vector seed (default 1)
}

// LanczosGround computes the smallest eigenvalue (and eigenvector) of a
// Hermitian operator using the Lanczos method with full
// reorthogonalization. Full reorthogonalization is O(k·n) per iteration
// but immune to ghost eigenvalues, which matters because VQE accuracy is
// judged against this reference.
func LanczosGround(op MatVecer, opts LanczosOptions) (float64, []complex128, error) {
	n := op.Dim()
	if n == 0 {
		return 0, nil, core.ErrInvalidArgument
	}
	if n == 1 {
		e := make([]complex128, 1)
		e[0] = 1
		dst := make([]complex128, 1)
		op.Apply(dst, e)
		return real(dst[0]), e, nil
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 200
	}
	if maxIter > n {
		maxIter = n
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}

	rng := core.NewRNG(seed)
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	VecScale(v, complex(1/VecNorm(v), 0))

	basis := [][]complex128{append([]complex128(nil), v...)}
	var alphas, betas []float64
	w := make([]complex128, n)
	prevEig := math.Inf(1)

	for k := 0; k < maxIter; k++ {
		op.Apply(w, basis[k])
		alpha := real(VecDot(basis[k], w))
		alphas = append(alphas, alpha)
		// w ← w − α v_k − β v_{k−1}, then full reorthogonalization.
		VecAXPY(complex(-alpha, 0), basis[k], w)
		if k > 0 {
			VecAXPY(complex(-betas[k-1], 0), basis[k-1], w)
		}
		for _, b := range basis {
			VecAXPY(-VecDot(b, w), b, w)
		}
		beta := VecNorm(w)

		// Solve the tridiagonal eigenproblem for current Krylov space.
		eig, evec := tridiagGround(alphas, betas)
		if math.Abs(eig-prevEig) < tol || beta < 1e-13 || k == maxIter-1 {
			// Assemble the Ritz vector.
			out := make([]complex128, n)
			for i, b := range basis {
				VecAXPY(complex(evec[i], 0), b, out)
			}
			VecScale(out, complex(1/VecNorm(out), 0))
			return eig, out, nil
		}
		prevEig = eig
		betas = append(betas, beta)
		next := make([]complex128, n)
		copy(next, w)
		VecScale(next, complex(1/beta, 0))
		basis = append(basis, next)
	}
	return 0, nil, core.ErrNotConverged
}

// tridiagGround finds the smallest eigenpair of the symmetric tridiagonal
// matrix with the given diagonal (alphas) and off-diagonal (betas, one
// shorter) via bisection + inverse iteration.
func tridiagGround(alphas, betas []float64) (float64, []float64) {
	k := len(alphas)
	if k == 1 {
		return alphas[0], []float64{1}
	}
	// Gershgorin bounds.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < k; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(betas[i-1])
		}
		if i < k-1 {
			r += math.Abs(betas[i])
		}
		lo = math.Min(lo, alphas[i]-r)
		hi = math.Max(hi, alphas[i]+r)
	}
	// countBelow returns #eigenvalues < x (Sturm sequence).
	countBelow := func(x float64) int {
		count := 0
		d := alphas[0] - x
		if d < 0 {
			count++
		}
		for i := 1; i < k; i++ {
			if d == 0 {
				d = 1e-300
			}
			d = alphas[i] - x - betas[i-1]*betas[i-1]/d
			if d < 0 {
				count++
			}
		}
		return count
	}
	for hi-lo > 1e-14*(1+math.Abs(lo)) {
		mid := 0.5 * (lo + hi)
		if countBelow(mid) >= 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	eig := 0.5 * (lo + hi)

	// Inverse iteration for the eigenvector.
	vec := make([]float64, k)
	for i := range vec {
		vec[i] = 1 / math.Sqrt(float64(k))
	}
	shift := eig - 1e-10
	for iter := 0; iter < 4; iter++ {
		vec = solveTridiag(alphas, betas, shift, vec)
		norm := 0.0
		for _, x := range vec {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		for i := range vec {
			vec[i] /= norm
		}
	}
	return eig, vec
}

// solveTridiag solves (T - shift·I)x = b with the Thomas algorithm.
func solveTridiag(alphas, betas []float64, shift float64, b []float64) []float64 {
	k := len(alphas)
	c := make([]float64, k)
	d := make([]float64, k)
	x := make([]float64, k)
	denom := alphas[0] - shift
	if math.Abs(denom) < 1e-300 {
		denom = 1e-300
	}
	if k > 1 {
		c[0] = betas[0] / denom
	}
	d[0] = b[0] / denom
	for i := 1; i < k; i++ {
		denom = alphas[i] - shift - betas[i-1]*c[i-1]
		if math.Abs(denom) < 1e-300 {
			denom = 1e-300
		}
		if i < k-1 {
			c[i] = betas[i] / denom
		}
		d[i] = (b[i] - betas[i-1]*d[i-1]) / denom
	}
	x[k-1] = d[k-1]
	for i := k - 2; i >= 0; i-- {
		x[i] = d[i] - c[i]*x[i+1]
	}
	return x
}
