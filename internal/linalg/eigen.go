package linalg

import (
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/core"
)

// EigenResult holds the spectrum of a Hermitian matrix: eigenvalues in
// ascending order and the matching eigenvectors as columns of V.
type EigenResult struct {
	Values  []float64
	Vectors *Matrix // column j is the eigenvector of Values[j]
}

// EighJacobi diagonalizes a Hermitian matrix with the cyclic complex
// Jacobi method. It is O(n³) per sweep and intended for the small dense
// matrices in this code base (FCI reference spectra, gate checks,
// downfolded Hamiltonian blocks up to a few thousand rows).
func EighJacobi(h *Matrix) (*EigenResult, error) {
	n := h.Rows
	if h.Cols != n {
		return nil, core.ErrDimensionMismatch
	}
	if !h.IsHermitian(1e-9) {
		return nil, core.ErrInvalidArgument
	}
	a := h.Clone()
	v := Identity(n)

	offDiag := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				x := a.At(i, j)
				s += real(x)*real(x) + imag(x)*imag(x)
			}
		}
		return math.Sqrt(s)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiag() < 1e-12*float64(n) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if cmplx.Abs(apq) < 1e-15 {
					continue
				}
				app := real(a.At(p, p))
				aqq := real(a.At(q, q))
				// Complex Jacobi rotation: zero out a[p][q].
				// Write a[p][q] = |apq| e^{iφ}; rotate with
				// U = [[c, -s e^{iφ}], [s e^{-iφ}, c]].
				absApq := cmplx.Abs(apq)
				phase := apq / complex(absApq, 0)
				tau := (aqq - app) / (2 * absApq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				cc := complex(c, 0)
				sp := complex(s, 0) * phase              // s·e^{iφ}
				spc := complex(s, 0) * cmplx.Conj(phase) // s·e^{-iφ}

				// Update rows/columns p and q of a: a ← U† a U.
				for k := 0; k < n; k++ {
					akp := a.At(k, p)
					akq := a.At(k, q)
					a.Set(k, p, cc*akp-spc*akq)
					a.Set(k, q, sp*akp+cc*akq)
				}
				for k := 0; k < n; k++ {
					apk := a.At(p, k)
					aqk := a.At(q, k)
					a.Set(p, k, cc*apk-sp*aqk)
					a.Set(q, k, spc*apk+cc*aqk)
				}
				// Accumulate eigenvectors: v ← v U.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, cc*vkp-spc*vkq)
					v.Set(k, q, sp*vkp+cc*vkq)
				}
			}
		}
	}
	if offDiag() > 1e-7*float64(n) {
		return nil, core.ErrNotConverged
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = real(a.At(i, i))
	}
	// Sort ascending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newJ, oldJ := range idx {
		sortedVals[newJ] = vals[oldJ]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return &EigenResult{Values: sortedVals, Vectors: sortedVecs}, nil
}

// GroundState returns the smallest eigenvalue and its eigenvector of a
// Hermitian matrix, choosing dense Jacobi for small systems.
func GroundState(h *Matrix) (float64, []complex128, error) {
	res, err := EighJacobi(h)
	if err != nil {
		return 0, nil, err
	}
	vec := make([]complex128, h.Rows)
	for i := 0; i < h.Rows; i++ {
		vec[i] = res.Vectors.At(i, 0)
	}
	return res.Values[0], vec, nil
}
