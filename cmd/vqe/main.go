// Command vqe runs the end-to-end VQE workflow (paper Figure 2) on a
// built-in molecular model and reports the optimized energy against the
// exact (FCI) reference. Flags assemble a runspec.RunSpec — the same
// document the vqed daemon accepts over HTTP — and the shared engine
// executes it.
//
//	vqe -molecule h2                      # UCCSD VQE on H2/STO-3G
//	vqe -molecule water -adapt            # Adapt-VQE on the 12-qubit model
//	vqe -molecule h2 -qpe                 # quantum phase estimation
//	vqe -molecule hubbard -sites 3 -u 4   # Hubbard chain
//	vqe -molecule synthetic -orbitals 3 -electrons 2 -downfold 2
//	vqe -molecule water -checkpoint w.ckpt -walltime 00:30  # budgeted run
//	vqe -molecule water -checkpoint w.ckpt -resume          # continue it
//	vqe -spec job.json                    # run a spec document directly
//	vqe -scan 0.4:2.0:0.05                # warm-started H2 dissociation scan
//	vqe -sweep family.json                # run a SweepSpec job family
//	vqe -sweep family.json -sweep-cold    # cold baseline for the comparison
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/cmd/internal/runreport"
	"repro/cmd/internal/specflags"
	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/kernel/calib"
	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/pauli"
	"repro/internal/runspec"
	"repro/internal/vqe"
)

func main() {
	sf := specflags.Add(flag.CommandLine, specflags.All)
	var (
		taper     = flag.Bool("taper", false, "report Z2-symmetry qubit tapering of the observable")
		hamFile   = flag.String("hamiltonian", "", "run VQE on an operator file (hardware-efficient ansatz) instead of a built-in molecule")
		layers    = flag.Int("layers", 2, "operator-file mode: HEA entangling layers")
		scan      = flag.String("scan", "", "H2 dissociation scan \"start:stop:step\" in Å (warm-started VQE)")
		specFile  = flag.String("spec", "", "run a RunSpec JSON document instead of assembling one from flags")
		sweepFile = flag.String("sweep", "", "run a SweepSpec JSON document (parameter-sweep job family)")
		sweepCold = flag.Bool("sweep-cold", false, "disable warm-starting in -scan/-sweep (the cold baseline for the iteration-savings comparison)")
	)
	obsFlags := runreport.AddFlags(flag.CommandLine)
	calibFlags := calib.AddFlags(flag.CommandLine)
	flag.Parse()

	var err error
	rep, err = runreport.Start("vqe", obsFlags)
	if err != nil {
		fail(err)
	}
	if err := calibFlags.Setup(); err != nil {
		fail(err)
	}

	if *hamFile != "" {
		runOnOperatorFile(*hamFile, *layers, sf.Workers())
		finishReport()
		return
	}
	if *scan != "" {
		runScan(*scan, *sweepCold)
		finishReport()
		return
	}
	if *sweepFile != "" {
		data, err := os.ReadFile(*sweepFile)
		if err != nil {
			fail(err)
		}
		ss, err := runspec.ParseSweep(data)
		if err != nil {
			fail(err)
		}
		runSweep(ss, *sweepCold, ss.Axis.Param)
		finishReport()
		return
	}

	var spec *runspec.RunSpec
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fail(err)
		}
		if spec, err = runspec.Parse(data); err != nil {
			fail(err)
		}
	} else if spec, err = sf.Spec(); err != nil {
		fail(err)
	}
	spec.ApplyDefaults()

	if *taper {
		m, err := runspec.BuildMolecule(spec.Molecule)
		if err != nil {
			fail(err)
		}
		tr, err := chem.TaperedHamiltonian(m)
		if err != nil {
			fail(err)
		}
		fmt.Printf("tapering:   %d → %d qubits (%d Z2 symmetries removed)\n",
			m.NumSpinOrbitals(), tr.NumQubits, len(tr.Symmetries))
	}
	if spec.Resilience.Walltime != "" {
		fmt.Printf("walltime:   %s budget\n", spec.Resilience.Walltime)
	}

	res, err := runspec.Run(context.Background(), spec, runspec.RunOptions{})
	if err != nil {
		fail(err)
	}
	report(spec, res)
	finishReport()
}

// report prints the engine result in the CLI's traditional shape.
func report(spec *runspec.RunSpec, res *runspec.Result) {
	fmt.Printf("molecule:   %s (spec %s)\n", res.Molecule, res.SpecHash)
	fmt.Printf("observable: %d Pauli terms on %d qubits (%s encoding)\n",
		res.NumTerms, res.NumQubits, spec.Encoding)
	rep.SetQubits(res.NumQubits)
	rep.SetTerms(res.NumTerms)
	fmt.Printf("reference:  E(HF)  = %+.8f Ha\n", res.HartreeFock)
	fmt.Printf("            E(FCI) = %+.8f Ha\n", res.Exact)

	if res.Algorithm == runspec.AlgorithmAdapt && len(res.History) > 0 {
		fmt.Println("\niter  operator            energy          ΔE (mHa)")
		for _, it := range res.History {
			fmt.Printf("%4d  %-18s %+.8f  %8.3f\n", it.Iteration, it.Operator, it.Energy, 1000*it.ErrorVsExact)
		}
	}
	if res.Interrupted {
		fmt.Println("\nwalltime expired: reporting the best point reached before the cutoff")
		if res.CheckpointPath != "" {
			fmt.Printf("state saved to %s — rerun with -resume to continue\n", res.CheckpointPath)
		}
	}
	switch res.Algorithm {
	case runspec.AlgorithmQPE:
		fmt.Printf("\nQPE result (%d ancillas, resolution %.4f Ha):\n", spec.QPE.Ancillas, res.QPE.Resolution)
		fmt.Printf("  E(QPE)    = %+.6f Ha (confidence %.2f)\n", res.Energy, res.QPE.Confidence)
		fmt.Printf("  |ΔE(FCI)| = %.3e Ha\n", res.ErrorVsExact)
	case runspec.AlgorithmAdapt:
		switch {
		case res.Interrupted:
			fmt.Println("ansatz growth stopped at the last completed iteration")
		case res.Converged:
			fmt.Printf("converged to chemical accuracy in %d iterations\n", len(res.History))
		default:
			fmt.Println("did not reach chemical accuracy within the iteration budget")
		}
		fmt.Printf("  E(Adapt)  = %+.8f Ha, |ΔE(FCI)| = %.3e Ha\n", res.Energy, res.ErrorVsExact)
	default:
		fmt.Printf("\nVQE result (backend=%s, mode=%s, optimizer=%s):\n",
			spec.Backend.Accelerator, spec.Mode, spec.Optimizer.Method)
		fmt.Printf("  E(VQE)    = %+.8f Ha\n", res.Energy)
		fmt.Printf("  |ΔE(FCI)| = %.3e Ha (%.3f mHa)\n", res.ErrorVsExact, 1000*res.ErrorVsExact)
		fmt.Printf("  energy evaluations: %d, ansatz executions: %d, gates applied: %d\n",
			res.EnergyEvaluations, res.AnsatzExecutions, res.GatesApplied)
	}
}

// rep is the process run report (set once in main before any workload
// runs; helpers touch it from the same goroutine).
var rep *runreport.Run

func finishReport() {
	if err := rep.Finish(); err != nil {
		fail(err)
	}
}

// runOnOperatorFile loads a serialized observable and minimizes it with a
// hardware-efficient ansatz, reporting against the Lanczos ground energy.
// This path stays outside the spec engine: an arbitrary operator file has
// no declarative molecule section.
func runOnOperatorFile(path string, layers, workers int) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	h, n, err := pauli.ReadOp(f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("observable: %d Pauli terms on %d qubits (from %s)\n", h.NumTerms(), n, path)
	rep.SetQubits(n)
	rep.SetTerms(h.NumTerms())
	exact, _, err := linalg.LanczosGround(pauli.OpMatVec{Op: h, N: n}, linalg.LanczosOptions{})
	if err != nil {
		fail(err)
	}
	fmt.Printf("reference:  E(exact) = %+.8f (Lanczos)\n", exact)
	hea, err := ansatz.NewHardwareEfficient(n, layers, 0)
	if err != nil {
		fail(err)
	}
	fmt.Printf("ansatz:     hardware-efficient, %d layers, %d parameters\n", layers, hea.NumParameters())
	drv, err := vqe.New(h, hea, vqe.Options{Mode: vqe.Direct, Workers: workers})
	if err != nil {
		fail(err)
	}
	// HEA landscapes are rugged: multi-start Nelder–Mead, keep the best.
	best := math.Inf(1)
	rng := core.NewRNG(7)
	var bestRes vqe.Result
	for start := 0; start < 4; start++ {
		x0 := make([]float64, hea.NumParameters())
		for i := range x0 {
			x0[i] = 0.4 * rng.NormFloat64()
		}
		res := drv.Minimize(x0, opt.NelderMeadOptions{MaxIter: 4000})
		if res.Energy < best {
			best = res.Energy
			bestRes = res
		}
	}
	fmt.Printf("\nVQE result (HEA, Nelder-Mead, 4 starts):\n")
	fmt.Printf("  E(VQE)    = %+.8f\n", bestRes.Energy)
	fmt.Printf("  |ΔE|      = %.3e\n", math.Abs(bestRes.Energy-exact))
	fmt.Printf("  energy evaluations: %d\n", bestRes.Stats.EnergyEvaluations)
}

// runScan sweeps the H2 bond length, printing one row per geometry with
// warm-started VQE (paper §6.2 incremental optimization). It is sugar
// for a distance-axis SweepSpec executed by the shared family runner —
// the same expansion, ordering, and warm-start chain the vqed scheduler
// uses.
func runScan(spec string, cold bool) {
	var start, stop, step float64
	if _, err := fmt.Sscanf(spec, "%f:%f:%f", &start, &stop, &step); err != nil || step <= 0 || stop < start {
		fail(fmt.Errorf("bad -scan %q (want start:stop:step)", spec))
	}
	ss := &runspec.SweepSpec{
		Base: runspec.RunSpec{Algorithm: runspec.AlgorithmVQE, Molecule: runspec.MoleculeSpec{Kind: "h2"}},
		Axis: runspec.SweepAxis{Param: runspec.AxisDistance, Start: start, Stop: stop, Step: step},
	}
	runSweep(ss, cold, "R_angstrom")
}

// runSweep executes a family via the shared runner, one row per point in
// execution (axis-value) order plus a totals line.
func runSweep(ss *runspec.SweepSpec, cold bool, valueHeader string) {
	fmt.Printf("%s\tE_HF\tE_VQE\tE_FCI\tdelta\tevals\n", valueHeader)
	res, err := runspec.RunSweep(context.Background(), ss, runspec.SweepRunOptions{
		ColdStart: cold,
		OnPoint: func(po runspec.SweepPointOutcome) {
			if po.Error != "" {
				fmt.Printf("%.4f\tFAILED: %s\n", po.Value, po.Error)
				return
			}
			r := po.Result
			rep.SetQubits(r.NumQubits)
			rep.SetTerms(r.NumTerms)
			fmt.Printf("%.4f\t%+.6f\t%+.6f\t%+.6f\t%.2e\t%d\n",
				po.Value, r.HartreeFock, r.Energy, r.Exact,
				r.ErrorVsExact, r.EnergyEvaluations)
		},
	})
	if err != nil {
		fail(err)
	}
	warmed := 0
	for _, po := range res.Points {
		if po.WarmStarted {
			warmed++
		}
	}
	fmt.Printf("sweep:\t%d point(s), %d warm-started, %d failed, %d energy evaluations total (family %s)\n",
		len(res.Points), warmed, res.Failed, res.EnergyEvaluations, res.FamilyHash)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vqe:", err)
	os.Exit(1)
}
