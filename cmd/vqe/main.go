// Command vqe runs the end-to-end VQE workflow (paper Figure 2) on a
// built-in molecular model and reports the optimized energy against the
// exact (FCI) reference.
//
//	vqe -molecule h2                      # UCCSD VQE on H2/STO-3G
//	vqe -molecule water -adapt            # Adapt-VQE on the 12-qubit model
//	vqe -molecule h2 -qpe                 # quantum phase estimation
//	vqe -molecule hubbard -sites 3 -u 4   # Hubbard chain
//	vqe -molecule synthetic -orbitals 3 -electrons 2 -downfold 2
//	vqe -molecule water -checkpoint w.ckpt -walltime 00:30  # budgeted run
//	vqe -molecule water -checkpoint w.ckpt -resume          # continue it
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/cmd/internal/runreport"
	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/pauli"
	"repro/internal/qpe"
	"repro/internal/resilience"
	"repro/internal/vqe"
)

func main() {
	var (
		molecule  = flag.String("molecule", "h2", "h2 | water | hubbard | synthetic")
		sites     = flag.Int("sites", 2, "hubbard: chain length")
		hopping   = flag.Float64("t", 1.0, "hubbard: hopping amplitude")
		repulsion = flag.Float64("u", 4.0, "hubbard: on-site repulsion")
		orbitals  = flag.Int("orbitals", 3, "synthetic: spatial orbitals")
		electrons = flag.Int("electrons", 2, "hubbard/synthetic: electron count")
		seed      = flag.Uint64("seed", 1, "synthetic: generator seed")
		downfold  = flag.Int("downfold", 0, "downfold to this many active orbitals before solving (0 = off)")
		taper     = flag.Bool("taper", false, "report Z2-symmetry qubit tapering of the observable")
		encoding  = flag.String("encoding", "jw", "fermion-to-qubit mapping: jw | bk | parity")
		mode      = flag.String("mode", "direct", "energy evaluation: direct | rotated | sampled")
		shots     = flag.Int("shots", 8192, "shots per group in sampled mode")
		caching   = flag.Bool("caching", true, "post-ansatz state caching (rotated/sampled modes)")
		fusion    = flag.Bool("fusion", false, "transpile ansatz circuits with gate fusion")
		optimizer = flag.String("optimizer", "lbfgs", "lbfgs | nelder-mead")
		adapt     = flag.Bool("adapt", false, "run Adapt-VQE instead of fixed UCCSD")
		runQPE    = flag.Bool("qpe", false, "run quantum phase estimation instead of VQE")
		ancillas  = flag.Int("ancillas", 7, "qpe: ancilla qubits")
		workers   = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		hamFile   = flag.String("hamiltonian", "", "run VQE on an operator file (hardware-efficient ansatz) instead of a built-in molecule")
		layers    = flag.Int("layers", 2, "operator-file mode: HEA entangling layers")
		scan      = flag.String("scan", "", "H2 dissociation scan \"start:stop:step\" in Å (warm-started VQE)")
		ckptPath  = flag.String("checkpoint", "", "write atomic CRC-verified optimizer snapshots to this file")
		ckptEvery = flag.Int("checkpoint-every", 10, "iterations between checkpoint writes")
		resume    = flag.Bool("resume", false, "load -checkpoint before starting and continue from it")
		walltime  = flag.String("walltime", "", "walltime budget (SLURM forms \"30\", \"HH:MM:SS\", \"D-HH:MM\" or Go \"90s\"); halts gracefully with best-so-far")
	)
	obsFlags := runreport.AddFlags(flag.CommandLine)
	flag.Parse()

	var err error
	rep, err = runreport.Start("vqe", obsFlags)
	if err != nil {
		fail(err)
	}

	if *resume && *ckptPath == "" {
		fail(fmt.Errorf("%w: -resume needs -checkpoint", core.ErrInvalidArgument))
	}
	ro := vqe.ResilienceOptions{CheckpointPath: *ckptPath, CheckpointEvery: *ckptEvery, Resume: *resume}
	ctx := context.Background()
	if *walltime != "" {
		budget, err := resilience.ParseWalltime(*walltime)
		if err != nil {
			fail(err)
		}
		// Reserve a couple of seconds inside the budget for the final
		// checkpoint write and the run report.
		var cancel context.CancelFunc
		ctx, cancel = resilience.WithWalltime(ctx, budget, 2*time.Second)
		defer cancel()
		fmt.Printf("walltime:   %s budget\n", budget)
	}

	if *hamFile != "" {
		runOnOperatorFile(*hamFile, *layers, *workers)
		finishReport()
		return
	}
	if *scan != "" {
		runScan(*scan)
		finishReport()
		return
	}

	m, err := buildMolecule(*molecule, *sites, *hopping, *repulsion, *orbitals, *electrons, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("molecule: %s (%d spin orbitals, %d electrons)\n", m.Name, m.NumSpinOrbitals(), m.NumElectrons)

	h, err := buildObservable(m, *encoding)
	if err != nil {
		fail(err)
	}
	n := m.NumSpinOrbitals()
	ne := m.NumElectrons
	if *downfold > 0 {
		res, err := chem.Downfold(m, chem.DownfoldOptions{ActiveOrbitals: *downfold, Order: 2})
		if err != nil {
			fail(err)
		}
		h = res.Qubit
		n = 2 * *downfold
		fmt.Printf("downfolded to %d active orbitals (%d qubits, %d σ amplitudes)\n", *downfold, n, res.SigmaTerms)
	}
	fmt.Printf("observable: %d Pauli terms on %d qubits (%s encoding)\n", h.NumTerms(), n, *encoding)
	rep.SetQubits(n)
	rep.SetTerms(h.NumTerms())
	if *taper {
		tr, err := chem.TaperedHamiltonian(m)
		if err != nil {
			fail(err)
		}
		fmt.Printf("tapering:   %d → %d qubits (%d Z2 symmetries removed)\n",
			n, tr.NumQubits, len(tr.Symmetries))
	}

	fci, err := chem.FCIofOp(chem.FermionicHamiltonian(m), m.NumSpinOrbitals(), ne)
	if err != nil {
		fail(err)
	}
	fmt.Printf("reference:  E(HF)  = %+.8f Ha\n", chem.HartreeFockEnergy(m))
	fmt.Printf("            E(FCI) = %+.8f Ha\n", fci.Energy)

	enc, err := encodingFor(*encoding, n)
	if err != nil {
		fail(err)
	}
	switch {
	case *runQPE:
		doQPE(h, n, ne, *ancillas, fci.Energy)
	case *adapt:
		doAdapt(ctx, h, n, ne, fci.Energy, *workers, ro)
	default:
		doVQE(ctx, h, enc, n, ne, *mode, *optimizer, *shots, *caching, *fusion, *workers, fci.Energy, ro)
	}
	finishReport()
}

// rep is the process run report (set once in main before any workload
// runs; helpers touch it from the same goroutine).
var rep *runreport.Run

func finishReport() {
	if err := rep.Finish(); err != nil {
		fail(err)
	}
}

func buildObservable(m *chem.MolecularData, encoding string) (*pauli.Op, error) {
	switch encoding {
	case "jw":
		return chem.QubitHamiltonian(m), nil
	case "bk":
		enc, err := fermion.BravyiKitaevEncoding(m.NumSpinOrbitals())
		if err != nil {
			return nil, err
		}
		q, err := enc.Transform(chem.FermionicHamiltonian(m))
		if err != nil {
			return nil, err
		}
		return q.HermitianPart(), nil
	case "parity":
		enc, err := fermion.ParityEncoding(m.NumSpinOrbitals())
		if err != nil {
			return nil, err
		}
		q, err := enc.Transform(chem.FermionicHamiltonian(m))
		if err != nil {
			return nil, err
		}
		return q.HermitianPart(), nil
	}
	return nil, fmt.Errorf("%w: encoding %q", core.ErrInvalidArgument, encoding)
}

func buildMolecule(kind string, sites int, t, u float64, orbitals, electrons int, seed uint64) (*chem.MolecularData, error) {
	switch kind {
	case "h2":
		return chem.H2(), nil
	case "water":
		return chem.WaterLike(), nil
	case "hubbard":
		return chem.Hubbard(sites, t, u, electrons), nil
	case "synthetic":
		return chem.Synthetic(chem.SyntheticOptions{NumOrbitals: orbitals, NumElectrons: electrons, Seed: seed}), nil
	}
	return nil, fmt.Errorf("%w: molecule %q", core.ErrInvalidArgument, kind)
}

// encodingFor returns nil for JW (the ansatz default) or the explicit
// encoding object otherwise.
func encodingFor(name string, n int) (*fermion.Encoding, error) {
	switch name {
	case "jw":
		return nil, nil
	case "bk":
		return fermion.BravyiKitaevEncoding(n)
	case "parity":
		return fermion.ParityEncoding(n)
	}
	return nil, fmt.Errorf("%w: encoding %q", core.ErrInvalidArgument, name)
}

func doVQE(ctx context.Context, h *pauli.Op, enc *fermion.Encoding, n, ne int, mode, optimizer string, shots int, caching, fusion bool, workers int, fciE float64, ro vqe.ResilienceOptions) {
	u, err := ansatz.NewUCCSDWithEncoding(n, ne, enc)
	if err != nil {
		fail(err)
	}
	fmt.Printf("ansatz:     UCCSD, %d parameters\n", u.NumParameters())
	em := vqe.Direct
	switch mode {
	case "direct":
	case "rotated":
		em = vqe.Rotated
	case "sampled":
		em = vqe.Sampled
	default:
		fail(fmt.Errorf("unknown mode %q", mode))
	}
	drv, err := vqe.New(h, u, vqe.Options{
		Mode: em, Shots: shots, Caching: caching && em != vqe.Direct,
		Transpile: fusion, Workers: workers,
	})
	if err != nil {
		fail(err)
	}
	x0 := make([]float64, u.NumParameters())
	var res vqe.Result
	switch optimizer {
	case "lbfgs":
		res, err = drv.MinimizeLBFGSContext(ctx, x0, opt.LBFGSOptions{}, ro)
		if err != nil {
			fail(err)
		}
	case "nelder-mead":
		res, err = drv.MinimizeContext(ctx, x0, opt.NelderMeadOptions{MaxIter: 5000}, ro)
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown optimizer %q", optimizer))
	}
	if res.Interrupted {
		fmt.Println("\nwalltime expired: reporting the best point reached before the cutoff")
		if ro.CheckpointPath != "" {
			fmt.Printf("state saved to %s — rerun with -resume to continue\n", ro.CheckpointPath)
		}
	}
	fmt.Printf("\nVQE result (mode=%s, optimizer=%s):\n", mode, optimizer)
	fmt.Printf("  E(VQE)    = %+.8f Ha\n", res.Energy)
	fmt.Printf("  |ΔE(FCI)| = %.3e Ha (%.3f mHa)\n", math.Abs(res.Energy-fciE), 1000*math.Abs(res.Energy-fciE))
	fmt.Printf("  energy evaluations: %d, ansatz executions: %d, gates applied: %d\n",
		res.Stats.EnergyEvaluations, res.Stats.AnsatzExecutions, res.Stats.GatesApplied)
	if res.CacheStats.Puts > 0 {
		fmt.Printf("  cache: %d puts, %d hits (%d device, %d host)\n",
			res.CacheStats.Puts, res.CacheStats.Hits, res.CacheStats.DeviceHits, res.CacheStats.HostHits)
	}
}

func doAdapt(ctx context.Context, h *pauli.Op, n, ne int, fciE float64, workers int, ro vqe.ResilienceOptions) {
	pool, err := ansatz.NewPool(n, ne)
	if err != nil {
		fail(err)
	}
	fmt.Printf("ansatz:     Adapt-VQE, pool of %d operators\n", pool.Size())
	res, err := vqe.AdaptContext(ctx, h, pool, n, ne, vqe.AdaptOptions{
		MaxIterations: 25,
		Reference:     fciE,
		EnergyTol:     core.ChemicalAccuracy,
		Workers:       workers,
	}, ro)
	if err != nil {
		fail(err)
	}
	fmt.Println("\niter  operator            energy          ΔE (mHa)")
	for _, it := range res.History {
		fmt.Printf("%4d  %-18s %+.8f  %8.3f\n", it.Iteration, it.Operator, it.Energy, 1000*it.ErrorVsRef)
	}
	switch {
	case res.Interrupted:
		fmt.Println("walltime expired: ansatz growth stopped at the last completed iteration")
		if ro.CheckpointPath != "" {
			fmt.Printf("state saved to %s — rerun with -resume to continue\n", ro.CheckpointPath)
		}
	case res.Converged:
		fmt.Printf("converged to chemical accuracy in %d iterations\n", len(res.History))
	default:
		fmt.Println("did not reach chemical accuracy within the iteration budget")
	}
}

func doQPE(h *pauli.Op, n, ne, ancillas int, fciE float64) {
	prep := qpe.HartreeFockPrep(n, ne)
	res, err := qpe.Estimate(h, prep, n, qpe.Options{AncillaQubits: ancillas, TrotterSteps: 4})
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nQPE result (%d ancillas, resolution %.4f Ha):\n", ancillas, res.Resolution)
	fmt.Printf("  E(QPE)    = %+.6f Ha (confidence %.2f)\n", res.Energy, res.Confidence)
	fmt.Printf("  |ΔE(FCI)| = %.3e Ha\n", math.Abs(res.Energy-fciE))
	fmt.Println("  top outcomes:")
	for _, o := range res.TopOutcomes {
		fmt.Printf("    phase %.4f → E %+.6f (p = %.3f)\n", o.Phase, o.Energy, o.Probability)
	}
}

// runOnOperatorFile loads a serialized observable and minimizes it with a
// hardware-efficient ansatz, reporting against the Lanczos ground energy.
func runOnOperatorFile(path string, layers, workers int) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	h, n, err := pauli.ReadOp(f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("observable: %d Pauli terms on %d qubits (from %s)\n", h.NumTerms(), n, path)
	rep.SetQubits(n)
	rep.SetTerms(h.NumTerms())
	exact, _, err := linalg.LanczosGround(pauli.OpMatVec{Op: h, N: n}, linalg.LanczosOptions{})
	if err != nil {
		fail(err)
	}
	fmt.Printf("reference:  E(exact) = %+.8f (Lanczos)\n", exact)
	hea, err := ansatz.NewHardwareEfficient(n, layers, 0)
	if err != nil {
		fail(err)
	}
	fmt.Printf("ansatz:     hardware-efficient, %d layers, %d parameters\n", layers, hea.NumParameters())
	drv, err := vqe.New(h, hea, vqe.Options{Mode: vqe.Direct, Workers: workers})
	if err != nil {
		fail(err)
	}
	// HEA landscapes are rugged: multi-start Nelder–Mead, keep the best.
	best := math.Inf(1)
	rng := core.NewRNG(7)
	var bestRes vqe.Result
	for start := 0; start < 4; start++ {
		x0 := make([]float64, hea.NumParameters())
		for i := range x0 {
			x0[i] = 0.4 * rng.NormFloat64()
		}
		res := drv.Minimize(x0, opt.NelderMeadOptions{MaxIter: 4000})
		if res.Energy < best {
			best = res.Energy
			bestRes = res
		}
	}
	fmt.Printf("\nVQE result (HEA, Nelder-Mead, 4 starts):\n")
	fmt.Printf("  E(VQE)    = %+.8f\n", bestRes.Energy)
	fmt.Printf("  |ΔE|      = %.3e\n", math.Abs(bestRes.Energy-exact))
	fmt.Printf("  energy evaluations: %d\n", bestRes.Stats.EnergyEvaluations)
}

// runScan sweeps the H2 bond length, printing one row per geometry with
// warm-started VQE (paper §6.2 incremental optimization).
func runScan(spec string) {
	var start, stop, step float64
	if _, err := fmt.Sscanf(spec, "%f:%f:%f", &start, &stop, &step); err != nil || step <= 0 || stop < start {
		fail(fmt.Errorf("bad -scan %q (want start:stop:step)", spec))
	}
	fmt.Println("R_angstrom\tE_HF\tE_VQE\tE_FCI\tdelta\tevals")
	var warm []float64
	for r := start; r <= stop+1e-9; r += step {
		m, err := chem.H2AtDistance(r)
		if err != nil {
			fail(err)
		}
		h := chem.QubitHamiltonian(m)
		rep.SetQubits(4)
		rep.SetTerms(h.NumTerms())
		u, err := ansatz.NewUCCSD(4, 2)
		if err != nil {
			fail(err)
		}
		drv, err := vqe.New(h, u, vqe.Options{Mode: vqe.Direct})
		if err != nil {
			fail(err)
		}
		x0 := make([]float64, u.NumParameters())
		copy(x0, warm)
		res, err := drv.MinimizeLBFGS(x0, opt.LBFGSOptions{})
		if err != nil {
			fail(err)
		}
		warm = res.Params
		fci, err := chem.FCI(m)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%.4f\t%+.6f\t%+.6f\t%+.6f\t%.2e\t%d\n",
			r, chem.HartreeFockEnergy(m), res.Energy, fci.Energy,
			math.Abs(res.Energy-fci.Energy), res.Optimizer.Evaluations)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vqe:", err)
	os.Exit(1)
}
