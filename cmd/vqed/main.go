// Command vqed is the VQE job-serving daemon: it accepts RunSpec
// documents over HTTP, schedules them on a bounded worker fleet sharing
// one simulation pool, streams per-iteration progress over SSE, and
// answers repeated specs from a content-addressed result cache.
//
//	vqed -addr :8080 -jobs 4 -workers 0 -spool /tmp/vqed-spool
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight optimizers halt at
// the next iteration boundary, write resumable checkpoints into the
// spool, and a manifest.json records what can be resubmitted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/kernel/calib"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("jobs", 4, "maximum concurrently running jobs")
	queue := flag.Int("queue", 64, "queued-job capacity before submissions get 503")
	workers := flag.Int("workers", 0, "shared simulation pool width (0 = GOMAXPROCS)")
	spool := flag.String("spool", "", "checkpoint spool directory (default: vqed-spool under the OS temp dir)")
	cache := flag.Int("cache", 256, "result cache capacity (completed specs)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	calibFlags := calib.AddFlags(flag.CommandLine)
	flag.Parse()

	if err := calibFlags.Setup(); err != nil {
		log.Fatalf("vqed: %v", err)
	}

	srv, err := server.New(server.Config{
		MaxConcurrent: *jobs,
		QueueDepth:    *queue,
		SimWorkers:    *workers,
		SpoolDir:      *spool,
		CacheCapacity: *cache,
	})
	if err != nil {
		log.Fatalf("vqed: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("vqed: serving on %s (jobs=%d queue=%d workers=%d)",
			*addr, *jobs, *queue, srv.Pool().Workers())
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("vqed: %s received, draining (budget %s)", s, *drain)
	case err := <-errCh:
		log.Fatalf("vqed: listen: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the scheduler first: jobs settle (checkpointing in-flight
	// work), which ends their SSE streams, so the HTTP shutdown that
	// follows isn't held open by live event connections.
	drainErr := srv.Shutdown(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("vqed: http shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("vqed: drain: %v", drainErr)
		os.Exit(1)
	}
	fmt.Println("vqed: drained cleanly")
}
