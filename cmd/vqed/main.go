// Command vqed is the VQE job-serving daemon: it accepts RunSpec
// documents over HTTP, schedules them on a bounded worker fleet sharing
// one simulation pool, streams per-iteration progress over SSE, and
// answers repeated specs from a content-addressed result cache.
//
//	vqed -addr :8080 -jobs 4 -workers 0 -spool /tmp/vqed-spool
//
// Passing `-addr 127.0.0.1:0` binds an OS-assigned free port; the chosen
// address is printed on the "serving on" log line so scripts (and
// vqeload) can discover it without racing other processes for a port.
//
// With `-costmodel <profile.json>` the daemon quotes Retry-After on
// queue-full 503s from a calibrated per-spec runtime model (see
// internal/load/costmodel); without it the quote falls back to an EWMA of
// observed run times.
//
// The daemon is crash-safe: every accepted job is recorded in a
// write-ahead journal (journal.wal in the spool) before the client sees
// its 202, and startup replays the journal — re-enqueueing jobs a crash
// interrupted, resuming them from their latest resilience checkpoint.
// SIGINT/SIGTERM trigger a graceful drain: in-flight optimizers halt at
// the next iteration boundary and checkpoint into the spool; SIGKILL
// loses nothing but the iterations since the last checkpoint.
//
// Workers are fault-isolated: a panicking or stalled job (no progress
// within -stall-timeout) is recovered, requeued, and retried up to
// -retries times with jittered backoff before being declared failed.
// The VQED_FAULTS environment variable ("seed=1,panic=0.05,stall=0.02,
// stall_ms=400,max=8") injects worker panics and stalls for chaos
// drills — see scripts/vqed_chaos.sh.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/kernel/calib"
	"repro/internal/load/costmodel"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (port 0 picks a free port, logged at startup)")
	jobs := flag.Int("jobs", 4, "maximum concurrently running jobs")
	queue := flag.Int("queue", 64, "queued-job capacity before submissions get 503")
	workers := flag.Int("workers", 0, "shared simulation pool width (0 = GOMAXPROCS)")
	spool := flag.String("spool", "", "checkpoint spool directory (default: vqed-spool under the OS temp dir)")
	cache := flag.Int("cache", 256, "result cache capacity (completed specs)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	metrics := flag.Bool("metrics", true, "record scheduler telemetry for /v1/metrics")
	retries := flag.Int("retries", 2, "retry budget for panicked/stalled jobs before they fail")
	stall := flag.Duration("stall-timeout", 2*time.Minute, "no-progress deadline before the watchdog kills a running job (0 disables)")
	costModel := flag.String("costmodel", "", "cost-model profile for Retry-After quoting (from `vqeload probe`)")
	sweepPoints := flag.Int("sweep-points", 256, "maximum points one sweep family may expand to")
	calibFlags := calib.AddFlags(flag.CommandLine)
	flag.Parse()

	if err := calibFlags.Setup(); err != nil {
		log.Fatalf("vqed: %v", err)
	}
	if *metrics {
		telemetry.Enable()
	}

	cfg := server.Config{
		MaxConcurrent:  *jobs,
		QueueDepth:     *queue,
		SimWorkers:     *workers,
		SpoolDir:       *spool,
		CacheCapacity:  *cache,
		RetryBudget:    *retries,
		StallTimeout:   *stall,
		MaxSweepPoints: *sweepPoints,
		Logf:           log.Printf,
	}
	if spec := os.Getenv("VQED_FAULTS"); spec != "" {
		hook, err := server.FaultHookFromEnv(spec)
		if err != nil {
			log.Fatalf("vqed: VQED_FAULTS: %v", err)
		}
		cfg.FaultHook = hook
		log.Printf("vqed: fault injection armed (VQED_FAULTS=%s)", spec)
	}
	if *costModel != "" {
		model, err := costmodel.Load(*costModel)
		if err != nil {
			log.Fatalf("vqed: %v", err)
		}
		cfg.Estimator = model.Estimator()
		log.Printf("vqed: wait quotes from cost model %s (rmsle %.3f, %d samples)",
			*costModel, model.RMSLE, model.Samples)
	}

	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("vqed: %v", err)
	}

	// Listen explicitly (rather than ListenAndServe) so `-addr :0` works:
	// the kernel-assigned port is known before the first request and goes
	// on the startup log line that scripts parse.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("vqed: listen: %v", err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("vqed: serving on %s (jobs=%d queue=%d workers=%d)",
			ln.Addr(), *jobs, *queue, srv.Pool().Workers())
		errCh <- httpSrv.Serve(ln)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("vqed: %s received, draining (budget %s)", s, *drain)
	case err := <-errCh:
		log.Fatalf("vqed: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the scheduler first: jobs settle (checkpointing in-flight
	// work), which ends their SSE streams, so the HTTP shutdown that
	// follows isn't held open by live event connections.
	drainErr := srv.Shutdown(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("vqed: http shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("vqed: drain: %v", drainErr)
		os.Exit(1)
	}
	fmt.Println("vqed: drained cleanly")
}
