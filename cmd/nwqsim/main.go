// Command nwqsim runs a QASM-lite circuit file on one of the registered
// simulation backends (single-node state vector, simulated multi-rank
// cluster, or density matrix) and prints the outcome distribution.
// Backend selection and fault-drill flags are the shared specflags
// vocabulary; the accelerator is resolved through the xacc registry.
//
//	nwqsim circuit.qasm
//	nwqsim -backend nwq-cluster -ranks 4 circuit.qasm
//	nwqsim -shots 4096 -fuse circuit.qasm
//	nwqsim -noise 0.01 circuit.qasm          # density-matrix with noise
//	nwqsim -backend nwq-cluster -fault-drop 0.05 -metrics circuit.qasm
//	echo 'qreg q[2]\nh q[0]\ncx q[0], q[1]' | nwqsim -
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/cmd/internal/runreport"
	"repro/cmd/internal/specflags"
	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/kernel/calib"
	"repro/internal/qasm"
	"repro/internal/xacc"
)

func main() {
	sf := specflags.Add(flag.CommandLine, specflags.Backend)
	var (
		shots = flag.Int("shots", 0, "sample this many shots (0 = exact probabilities only)")
		fuse  = flag.Bool("fuse", false, "apply gate fusion before executing")
		noise = flag.Float64("noise", 0, "depolarizing error rate (switches to the density-matrix backend)")
		top   = flag.Int("top", 16, "print at most this many outcomes")
		stats = flag.Bool("stats", false, "print circuit statistics and exit")
		list  = flag.Bool("backends", false, "list registered backends and exit")
	)
	obsFlags := runreport.AddFlags(flag.CommandLine)
	calibFlags := calib.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := calibFlags.Setup(); err != nil {
		fail(err)
	}
	if *list {
		for _, info := range xacc.DefaultRegistry.List() {
			fmt.Printf("%-16s ≤%2d qubits  %s\n", info.Name, info.QubitLimit, info.Description)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nwqsim [flags] <circuit.qasm | ->")
		flag.PrintDefaults()
		os.Exit(2)
	}

	rep, err := runreport.Start("nwqsim", obsFlags)
	if err != nil {
		fail(err)
	}

	c, err := load(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	rep.SetQubits(c.NumQubits)
	st := c.Stats()
	fmt.Printf("circuit: %d qubits, %d gates (%d 1q, %d 2q), depth %d\n",
		c.NumQubits, st.Total, st.OneQubit, st.TwoQubit, st.Depth)

	if *fuse {
		fused := circuit.Transpile(c, circuit.DefaultTranspileOptions())
		fst := fused.Stats()
		fmt.Printf("fused:   %d gates (%.1f%% reduction), depth %d\n",
			fst.Total, 100*(1-float64(fst.Total)/float64(st.Total)), fst.Depth)
		c = fused
	}
	if *stats {
		if err := rep.Finish(); err != nil {
			fail(err)
		}
		return
	}

	spec, err := sf.Spec()
	if err != nil {
		fail(err)
	}
	spec.ApplyDefaults()
	name := spec.Backend.Accelerator
	opts := spec.Backend.AcceleratorOptions()
	if *noise > 0 {
		name = "nwq-dm"
		opts.Noise = density.DepolarizingModel(*noise, 2**noise)
	}
	acc, err := xacc.DefaultRegistry.New(name, opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("backend: %s\n", acc.Name())

	start := time.Now()
	out, err := acc.Execute(context.Background(), c, *shots)
	if err != nil {
		fail(err)
	}
	fmt.Printf("executed in %v\n\n", time.Since(start).Round(time.Microsecond))

	printDistribution(out, c.NumQubits, *shots, *top)
	if f := opts.Resilience.Fault; f != nil {
		fmt.Printf("\nfaults injected: %d (%v) — all recovered\n",
			f.Injected(), f.InjectedByKind())
	}
	if err := rep.Finish(); err != nil {
		fail(err)
	}
}

func load(path string) (*circuit.Circuit, error) {
	if path == "-" {
		return qasm.Parse(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return qasm.Parse(f)
}

func printDistribution(res *xacc.ExecutionResult, n, shots, top int) {
	type row struct {
		idx  int
		prob float64
	}
	var rows []row
	for i, p := range res.Probabilities {
		if p > 1e-12 {
			rows = append(rows, row{i, p})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].prob > rows[j].prob })
	if len(rows) > top {
		fmt.Printf("top %d of %d outcomes:\n", top, len(rows))
		rows = rows[:top]
	}
	for _, r := range rows {
		line := fmt.Sprintf("|%0*b⟩  p = %.6f", n, r.idx, r.prob)
		if shots > 0 {
			line += fmt.Sprintf("   counts = %d", res.Counts[uint64(r.idx)])
		}
		fmt.Println(line)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nwqsim:", err)
	os.Exit(1)
}
