package main

// vqeload sweep: the sweep-family observer/driver the smoke drill uses.
// It submits a bond-scan family (or attaches to an existing one), polls
// the family view to a terminal state — tolerating connection errors
// while the daemon is being killed and restarted — and gates on the
// family invariants:
//
//   - ordered completion: at every observation the done set is a prefix
//     of the value-ascending execution order (-assert-order),
//   - zero lost points: a 404 for the family after a restart fails
//     immediately (the journal lost it),
//   - exactly-once settlement: each point terminal exactly once, with
//     done+failed+cancelled covering the family.
//
//	vqeload sweep -addr http://127.0.0.1:8931 -start 0.4 -stop 2.0 -step 0.05 -out sweep_curve.json
//	vqeload sweep -addr http://127.0.0.1:8931 -attach sweep-000001 -assert-order -tolerate 30s

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/load"
	"repro/internal/runspec"
)

func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("vqeload sweep", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon base URL (e.g. http://127.0.0.1:8931)")
	attach := fs.String("attach", "", "observe an existing sweep ID instead of submitting")
	start := fs.Float64("start", 0.4, "bond-scan start distance (Å)")
	stop := fs.Float64("stop", 2.0, "bond-scan stop distance (Å)")
	step := fs.Float64("step", 0.05, "bond-scan step (Å)")
	maxIter := fs.Int("maxiter", 0, "per-point optimizer iteration cap (0 = spec default)")
	poll := fs.Duration("poll", 50*time.Millisecond, "family poll cadence")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall deadline for the family to settle")
	tolerate := fs.Duration("tolerate", 0, "tolerate daemon connection errors for up to this long (restart windows)")
	assertOrder := fs.Bool("assert-order", false, "fail if done points are ever not a prefix of the value-ascending order (assumes a cold cache and no failures)")
	out := fs.String("out", "", "write the final family view (curve included) as JSON here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("sweep needs -addr")
	}
	c := load.NewClient(*addr)

	id := *attach
	if id == "" {
		base := runspec.RunSpec{
			Algorithm: runspec.AlgorithmVQE,
			Molecule:  runspec.MoleculeSpec{Kind: "h2"},
		}
		if *maxIter > 0 {
			base.Optimizer.MaxIter = *maxIter
		}
		ss := &runspec.SweepSpec{
			Base: base,
			Axis: runspec.SweepAxis{Param: runspec.AxisDistance, Start: *start, Stop: *stop, Step: *step},
		}
		res, err := c.SubmitSweep(ctx, ss)
		if err != nil {
			return fmt.Errorf("submit sweep: %w", err)
		}
		if res.Rejected {
			return fmt.Errorf("submit sweep: rejected with 503 (retry-after %s)", res.RetryAfter)
		}
		id = res.View.ID
		fmt.Fprintf(os.Stderr, "vqeload: sweep %s accepted: %d points of %s (family %s)\n",
			id, res.View.Points, res.View.Param, res.View.FamilyHash)
	}

	deadline := time.Now().Add(*timeout)
	var downSince time.Time
	everSeen := *attach != ""
	var final *load.SweepView
	for final == nil {
		if time.Now().After(deadline) {
			return fmt.Errorf("sweep %s not terminal after %s", id, *timeout)
		}
		v, err := c.Sweep(ctx, id)
		switch {
		case err == nil:
			downSince = time.Time{}
			everSeen = true
			if *assertOrder {
				if aerr := assertPrefixOrder(v); aerr != nil {
					return aerr
				}
			}
			if v.Terminal() {
				final = v
				continue
			}
		case errors.Is(err, load.ErrSweepNotFound) && everSeen:
			// The daemon answered — with "never heard of it". After a
			// restart this means the journal lost the family.
			return fmt.Errorf("sweep LOST: %w", err)
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			// Connection error: the daemon is down (mid-restart, when the
			// drill allows it). errors.Is(ErrSweepNotFound) before everSeen
			// also lands here and is fatal below unless tolerated.
			if *tolerate <= 0 {
				return fmt.Errorf("sweep %s: %w", id, err)
			}
			if downSince.IsZero() {
				downSince = time.Now()
			} else if time.Since(downSince) > *tolerate {
				return fmt.Errorf("sweep %s: daemon unreachable for over %s: %w", id, *tolerate, err)
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(*poll):
		}
	}

	settled := final.Done + final.Failed + final.Cancelled
	fmt.Printf("sweep %s: %s — %d points, %d done, %d failed, %d cancelled, %d cache hits, %d warm starts, %d energy evaluations\n",
		final.ID, final.Status, final.Points, final.Done, final.Failed, final.Cancelled,
		final.CacheHits, final.WarmStarts, final.EnergyEvaluations)
	if *out != "" {
		data, err := json.MarshalIndent(final, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "vqeload: curve written to %s\n", *out)
	}
	if settled != final.Points {
		return fmt.Errorf("sweep %s: %d of %d points settled — points were lost", final.ID, settled, final.Points)
	}
	if seen := map[int]bool{}; true {
		for _, p := range final.PointStates {
			if seen[p.Point] {
				return fmt.Errorf("sweep %s: point %d settled more than once", final.ID, p.Point)
			}
			seen[p.Point] = true
		}
	}
	if final.Status != "done" {
		return fmt.Errorf("sweep %s settled %s: %s", final.ID, final.Status, final.Error)
	}
	return nil
}

// assertPrefixOrder checks that the done set is a prefix of the
// value-ascending execution order: once a not-done point appears, no
// later point may be done. This is exactly what neighbor-ordered
// dispatch plus journaled resume guarantees on a cold cache.
func assertPrefixOrder(v *load.SweepView) error {
	if v.Failed > 0 {
		return fmt.Errorf("sweep %s: %d point(s) failed under -assert-order", v.ID, v.Failed)
	}
	pts := make([]load.SweepPointView, len(v.PointStates))
	copy(pts, v.PointStates)
	sort.Slice(pts, func(a, b int) bool { return pts[a].Value < pts[b].Value })
	boundary := false
	for _, p := range pts {
		if p.Status != "done" {
			boundary = true
		} else if boundary {
			return fmt.Errorf("sweep %s: point %d (value %g) done out of order — done set is not a prefix of the axis order",
				v.ID, p.Point, p.Value)
		}
	}
	return nil
}
