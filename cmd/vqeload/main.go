// Command vqeload is the serving-scale load harness and capacity planner
// for vqed. It drives a live daemon with open-loop (poisson, mmpp,
// diurnal) or closed-loop (fixed concurrency) traffic over weighted
// RunSpec mixes, records per-job latency/queue/SLO outcomes plus periodic
// /v1/metrics snapshots, and writes a machine-readable load_report.json.
//
//	vqeload run   -self -mode closed -concurrency 4 -duration 30s -mix smoke -report load_report.json
//	vqeload run   -addr http://127.0.0.1:8931 -mode open -arrival poisson -rate 20 -duration 60s -mix serving
//	vqeload chaos -addr http://127.0.0.1:8931 -duration 30s -expect-restarts 3 -out chaos_report.json
//	vqeload probe -out costmodel.json
//	vqeload plan  -model costmodel.json -rate 50 -p99 500ms -mix serving -validate
//	vqeload report -in load_report.json -md
//
// `run` exits non-zero when -fail-p99 / -min-slo gates trip, which is how
// CI turns a latency regression into a red build. `plan` answers "how
// many workers for this rate and p99 target" from the calibrated cost
// model via an M/G/c approximation; -validate replays the mix against a
// real in-process fleet at the planned size and reports prediction error.
// `chaos` drives closed-loop load while something else (scripts/
// vqed_chaos.sh) SIGKILLs and restarts the daemon, then gates on zero
// lost jobs, zero duplicates, and bit-equal energies versus local
// control runs of the same specs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/load"
	"repro/internal/load/costmodel"
	"repro/internal/runspec"
	"repro/internal/server"
	"repro/internal/state"
	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(ctx, os.Args[2:])
	case "chaos":
		err = cmdChaos(ctx, os.Args[2:])
	case "sweep":
		err = cmdSweep(ctx, os.Args[2:])
	case "probe":
		err = cmdProbe(ctx, os.Args[2:])
	case "plan":
		err = cmdPlan(ctx, os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "vqeload: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vqeload: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: vqeload <subcommand> [flags]

  run     generate load against a vqed and write a latency/SLO report
  chaos   drive load through daemon kills and gate on zero job loss
  sweep   submit or observe a sweep family and gate on its invariants
  probe   calibrate the per-spec cost model from short measurement runs
  plan    answer worker-count questions from the cost model (M/G/c)
  report  render an existing load_report.json as a table or markdown

run 'vqeload <subcommand> -h' for flags.
`)
}

func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("vqeload run", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon base URL (e.g. http://127.0.0.1:8931)")
	self := fs.Bool("self", false, "boot an in-process vqed instead of targeting -addr")
	selfJobs := fs.Int("self-jobs", 4, "worker count for the -self daemon")
	selfQueue := fs.Int("self-queue", 64, "queue depth for the -self daemon")
	selfNoCache := fs.Bool("self-nocache", false, "disable the -self daemon's result cache (measure cold-path latency)")
	mode := fs.String("mode", "closed", "closed (fixed concurrency) or open (arrival-driven)")
	concurrency := fs.Int("concurrency", 4, "closed-loop worker count")
	arrival := fs.String("arrival", "poisson", "open-loop arrival process: poisson, mmpp, diurnal")
	rate := fs.Float64("rate", 10, "open-loop base arrival rate (jobs/s)")
	burst := fs.Float64("burst-rate", 0, "mmpp burst-state rate (default 4x -rate)")
	peak := fs.Float64("peak-rate", 0, "diurnal crest rate (default 3x -rate)")
	period := fs.Duration("period", 0, "diurnal cycle length (default 1m)")
	duration := fs.Duration("duration", 30*time.Second, "load generation window")
	mixName := fs.String("mix", runspec.MixSmoke, "spec mix: smoke, serving, sweep")
	seed := fs.Int64("seed", 1, "workload seed (spec sampling + arrival gaps)")
	slo := fs.Duration("slo", 5*time.Second, "per-job end-to-end latency objective")
	metricsEvery := fs.Duration("metrics-every", 5*time.Second, "/v1/metrics sampling cadence (0 disables)")
	reportPath := fs.String("report", "", "write the JSON report here")
	outcomes := fs.Bool("outcomes", false, "embed raw per-job outcomes in the report")
	failP99 := fs.Duration("fail-p99", 0, "exit non-zero if end-to-end p99 exceeds this (0 disables)")
	minSLO := fs.Float64("min-slo", 0, "exit non-zero if SLO attainment falls below this fraction (0 disables)")
	markdown := fs.Bool("md", false, "print the markdown summary (for $GITHUB_STEP_SUMMARY) after the table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mix, err := runspec.MixByName(*mixName)
	if err != nil {
		return err
	}
	cfg := load.Config{
		Mode:         *mode,
		Concurrency:  *concurrency,
		Duration:     *duration,
		Mix:          mix,
		Seed:         *seed,
		SLOTarget:    *slo,
		MetricsEvery: *metricsEvery,
		KeepOutcomes: *outcomes,
	}
	if *mode == "open" {
		arr, err := load.ArrivalByName(*arrival, *rate, *burst, *peak, *period)
		if err != nil {
			return err
		}
		cfg.Arrival = arr
	}

	switch {
	case *self:
		telemetry.Enable()
		base, stop, err := load.StartLocal(server.Config{
			MaxConcurrent: *selfJobs,
			QueueDepth:    *selfQueue,
			DisableCache:  *selfNoCache,
		})
		if err != nil {
			return err
		}
		defer func() { _ = stop() }()
		cfg.BaseURL = base
		fmt.Fprintf(os.Stderr, "vqeload: self-hosted vqed at %s (jobs=%d queue=%d)\n", base, *selfJobs, *selfQueue)
	case *addr != "":
		cfg.BaseURL = *addr
	default:
		return fmt.Errorf("run needs -addr or -self")
	}

	runner, err := load.NewRunner(cfg)
	if err != nil {
		return err
	}
	rep, err := runner.Run(ctx)
	if err != nil {
		return err
	}

	fmt.Print(rep.Table())
	if *markdown {
		fmt.Print(rep.MarkdownSummary())
	}
	if *reportPath != "" {
		if err := rep.WriteFile(*reportPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "vqeload: report written to %s\n", *reportPath)
	}
	return rep.Gate(*failP99, *minSLO)
}

func cmdChaos(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("vqeload chaos", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon base URL (the thing being killed and restarted)")
	mixName := fs.String("mix", runspec.MixSmoke, "spec mix: keep it small-molecule so control runs are bit-deterministic")
	duration := fs.Duration("duration", 30*time.Second, "load generation window")
	concurrency := fs.Int("concurrency", 3, "closed-loop worker count")
	seed := fs.Int64("seed", 1, "workload seed")
	settle := fs.Duration("settle-timeout", 3*time.Minute, "grace period after the window for surviving jobs to reach a terminal state")
	expectRestarts := fs.Int("expect-restarts", 0, "fail unless the health prober witnessed at least this many daemon restarts")
	verify := fs.Bool("verify", true, "recompute each completed spec in-process and require bit-equal energies")
	out := fs.String("out", "chaos_report.json", "write the JSON chaos report here (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("chaos needs -addr (it kills a real daemon; there is no -self)")
	}
	mix, err := runspec.MixByName(*mixName)
	if err != nil {
		return err
	}
	rep, err := load.RunChaos(ctx, load.ChaosConfig{
		BaseURL:       *addr,
		Mix:           mix,
		Duration:      *duration,
		Concurrency:   *concurrency,
		Seed:          *seed,
		SettleTimeout: *settle,
		Verify:        *verify,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "vqeload: chaos report written to %s\n", *out)
	}
	return rep.Gate(*expectRestarts)
}

func cmdProbe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("vqeload probe", flag.ExitOnError)
	out := fs.String("out", "costmodel.json", "where to save the fitted model")
	reps := fs.Int("reps", 3, "measurement repetitions per class (median kept)")
	force := fs.Bool("force", false, "re-probe even if a valid profile exists")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*force {
		if model, err := costmodel.Load(*out); err == nil {
			fmt.Printf("existing profile %s is valid (rmsle %.3f, %d samples); use -force to re-probe\n",
				*out, model.RMSLE, model.Samples)
			return nil
		}
	}
	entries, err := costmodel.DefaultProbeEntries()
	if err != nil {
		return err
	}
	start := time.Now()
	samples, err := costmodel.Probe(ctx, entries, costmodel.ProbeOptions{Repetitions: *reps})
	if err != nil {
		return err
	}
	model, err := costmodel.Fit(samples)
	if err != nil {
		return err
	}
	if err := model.Save(*out); err != nil {
		return err
	}
	fmt.Printf("probed %d classes in %s, fit rmsle %.3f, saved to %s\n",
		len(samples), time.Since(start).Round(time.Millisecond), model.RMSLE, *out)
	for _, s := range samples {
		pred := model.PredictNs(s.Features)
		fmt.Printf("  %-16s q=%-3d terms=%-5d iters=%-5d measured=%-10s predicted=%s\n",
			s.Class, s.Features.Qubits, s.Features.Terms, s.Features.Iters,
			time.Duration(s.RunNs).Round(time.Microsecond),
			time.Duration(pred).Round(time.Microsecond))
	}
	return nil
}

func cmdPlan(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("vqeload plan", flag.ExitOnError)
	modelPath := fs.String("model", "costmodel.json", "cost-model profile (from `vqeload probe`; probed on demand if absent)")
	rate := fs.Float64("rate", 10, "offered arrival rate (jobs/s)")
	p99 := fs.Duration("p99", 500*time.Millisecond, "end-to-end p99 objective")
	mixName := fs.String("mix", runspec.MixServing, "spec mix the plan is for")
	maxWorkers := fs.Int("max-workers", 256, "worker-count search ceiling")
	validate := fs.Bool("validate", false, "replay the mix against an in-process fleet at the planned size")
	validateFor := fs.Duration("validate-duration", 20*time.Second, "replay window for -validate")
	reportPath := fs.String("report", "", "write the validation load report here")
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, probed, err := costmodel.LoadOrProbe(ctx, *modelPath, costmodel.ProbeOptions{})
	if err != nil {
		return err
	}
	if probed {
		fmt.Fprintf(os.Stderr, "vqeload: no valid profile at %s — probed and saved one (rmsle %.3f)\n", *modelPath, model.RMSLE)
	}
	mix, err := runspec.MixByName(*mixName)
	if err != nil {
		return err
	}
	svc, err := costmodel.MixService(model, mix)
	if err != nil {
		return err
	}
	res, err := costmodel.Plan(costmodel.PlanInput{
		RatePerSec: *rate,
		TargetP99:  *p99,
		MaxWorkers: *maxWorkers,
	}, svc)
	if err != nil {
		return err
	}

	fmt.Printf("mix %q service: mean %s, scv %.2f, p99 %s\n", *mixName,
		time.Duration(svc.MeanNs).Round(time.Microsecond), svc.SCV,
		time.Duration(svc.P99Ns).Round(time.Microsecond))
	if !res.Feasible {
		fmt.Printf("INFEASIBLE: no worker count ≤ %d meets p99 ≤ %s at %.3g jobs/s", *maxWorkers, *p99, *rate)
		//vqelint:ignore workerssemantics PlanResult.Workers is the planner's answer, not a pool-width sentinel
		if res.Workers > 0 {
			fmt.Printf(" (best: %d workers → predicted p99 %.1fms)", res.Workers, res.PredictedP99Ms)
		}
		fmt.Println()
		return fmt.Errorf("plan infeasible")
	}
	fmt.Printf("plan: %d workers for %.3g jobs/s at p99 ≤ %s\n", res.Workers, *rate, *p99)
	fmt.Printf("  utilization %.0f%%, P(wait) %.3f, mean wait %.2fms, p99 wait %.2fms, predicted e2e p99 %.1fms\n",
		res.Utilization*100, res.PWait, res.MeanWaitMs, res.P99WaitMs, res.PredictedP99Ms)

	if !*validate {
		return nil
	}

	telemetry.Enable()
	if cores := state.ResolveWorkers(0); res.Workers > cores {
		fmt.Printf("note: %d workers exceed the %d-core process budget — a single-machine replay\n"+
			"      timeshares the CPU, so measured service times will run above the solo-probe model\n",
			res.Workers, cores)
	}
	// The planner models every job paying full service time, so the
	// validation fleet runs cache-disabled — otherwise repeated specs
	// answer from the result cache and the comparison means nothing. The
	// queue is deep so shedding doesn't mask queueing delay.
	queueDepth := 4 * res.Workers
	if queueDepth < 256 {
		queueDepth = 256
	}
	base, stop, err := load.StartLocal(server.Config{
		MaxConcurrent: res.Workers,
		QueueDepth:    queueDepth,
		DisableCache:  true,
	})
	if err != nil {
		return err
	}
	defer func() { _ = stop() }()
	arr, err := load.NewPoisson(*rate)
	if err != nil {
		return err
	}
	runner, err := load.NewRunner(load.Config{
		BaseURL:      base,
		Mode:         "open",
		Arrival:      arr,
		Duration:     *validateFor,
		Mix:          mix,
		SLOTarget:    *p99,
		MetricsEvery: 5 * time.Second,
	})
	if err != nil {
		return err
	}
	fmt.Printf("validating: replaying %q at %.3g jobs/s for %s against %d in-process workers...\n",
		*mixName, *rate, *validateFor, res.Workers)
	rep, err := runner.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	if *reportPath != "" {
		if err := rep.WriteFile(*reportPath); err != nil {
			return err
		}
	}
	if rep.Completed == 0 {
		return fmt.Errorf("validation run completed zero jobs")
	}
	measured := rep.E2E.P99Ms
	errPct := 100 * (res.PredictedP99Ms - measured) / measured
	fmt.Printf("validation: measured e2e p99 %.1fms vs predicted %.1fms (%+.0f%% prediction error)\n",
		measured, res.PredictedP99Ms, errPct)
	if measured > float64(*p99)/1e6 {
		fmt.Printf("validation: measured p99 misses the %s objective — the analytic plan was optimistic here\n", *p99)
	} else {
		fmt.Printf("validation: objective met at the planned size\n")
	}
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("vqeload report", flag.ExitOnError)
	in := fs.String("in", "load_report.json", "report to render")
	markdown := fs.Bool("md", false, "emit the markdown summary instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := load.ReadReport(*in)
	if err != nil {
		return err
	}
	if *markdown {
		fmt.Print(rep.MarkdownSummary())
	} else {
		fmt.Print(rep.Table())
	}
	return nil
}
