// Package runreport is the shared observability harness for the cmd
// binaries: a common -metrics / -report / -profile flag set, pprof
// capture, and a machine-readable run report (run_report.json) built from
// the process-wide telemetry scope. CI uploads the report as an artifact
// and diffs it across commits; humans read the text snapshot printed to
// stderr.
package runreport

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/telemetry"
)

// Flags holds the observability options shared by vqe, nwqsim, benchfigs,
// and hamiltonian.
type Flags struct {
	Metrics bool
	Report  string
	Profile string
}

// AddFlags registers the shared flag set on fs (the default CommandLine
// set in practice) and returns the destination struct.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Metrics, "metrics", false,
		"enable telemetry: print a metrics snapshot to stderr and write a run report on exit")
	fs.StringVar(&f.Report, "report", "run_report.json",
		"run report path (written when -metrics is set)")
	fs.StringVar(&f.Profile, "profile", "",
		"write pprof profiles to <prefix>.cpu.pprof and <prefix>.heap.pprof")
	return f
}

// Report is the run_report.json schema. Phases is the per-phase wall-time
// view (timer totals); Pool summarizes worker-pool health; the embedded
// snapshot carries every raw instrument for ad-hoc diffing.
type Report struct {
	Command    string             `json:"command"`
	Args       []string           `json:"args,omitempty"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Qubits     int                `json:"qubits,omitempty"`
	Terms      int                `json:"terms,omitempty"`
	WallNs     int64              `json:"wall_ns"`
	PhaseNs    map[string]int64   `json:"phase_ns,omitempty"`
	Pool       *PoolReport        `json:"pool,omitempty"`
	Extras     map[string]float64 `json:"extras,omitempty"`
	Metrics    telemetry.Snapshot `json:"metrics"`
}

// PoolReport condenses the state.Pool instruments.
type PoolReport struct {
	Workers     int64   `json:"workers"`
	Runs        int64   `json:"runs"`
	Chunks      int64   `json:"chunks"`
	Inline      int64   `json:"inline"`
	BusyNs      int64   `json:"busy_ns"`
	Utilization float64 `json:"utilization"` // busy / (wall × workers)
}

// Run is one observed process execution: create with Start immediately
// after flag.Parse, then Finish before exit.
type Run struct {
	command string
	flags   *Flags
	start   time.Time
	cpuOut  *os.File
	qubits  int
	terms   int
	extras  map[string]float64
}

// Start applies the flags: enables telemetry for -metrics and begins CPU
// profiling for -profile. The returned Run must be Finished.
func Start(command string, f *Flags) (*Run, error) {
	r := &Run{command: command, flags: f, start: time.Now(), extras: map[string]float64{}}
	if f.Metrics {
		telemetry.Enable()
	}
	if f.Profile != "" {
		out, err := os.Create(f.Profile + ".cpu.pprof")
		if err != nil {
			return nil, fmt.Errorf("runreport: %w", err)
		}
		if err := pprof.StartCPUProfile(out); err != nil {
			out.Close()
			return nil, fmt.Errorf("runreport: %w", err)
		}
		r.cpuOut = out
	}
	return r, nil
}

// SetQubits records the run's register width (the max across calls, so
// sweeps report their largest problem).
func (r *Run) SetQubits(n int) {
	if n > r.qubits {
		r.qubits = n
	}
}

// SetTerms records the observable's term count (max across calls).
func (r *Run) SetTerms(n int) {
	if n > r.terms {
		r.terms = n
	}
}

// Set attaches an extra named value to the report (figure headline
// numbers, speedups, deviations).
func (r *Run) Set(key string, v float64) { r.extras[key] = v }

// Finish stops profiling, writes the heap profile, prints the metrics
// snapshot, and emits the run report. Call exactly once, on the normal
// exit path.
func (r *Run) Finish() error {
	if r.cpuOut != nil {
		pprof.StopCPUProfile()
		if err := r.cpuOut.Close(); err != nil {
			return fmt.Errorf("runreport: %w", err)
		}
		heap, err := os.Create(r.flags.Profile + ".heap.pprof")
		if err != nil {
			return fmt.Errorf("runreport: %w", err)
		}
		runtime.GC() // fresh allocation picture before the heap dump
		if err := pprof.WriteHeapProfile(heap); err != nil {
			heap.Close()
			return fmt.Errorf("runreport: %w", err)
		}
		if err := heap.Close(); err != nil {
			return fmt.Errorf("runreport: %w", err)
		}
		fmt.Fprintf(os.Stderr, "profiles: %s.cpu.pprof %s.heap.pprof\n", r.flags.Profile, r.flags.Profile)
	}
	if !r.flags.Metrics {
		return nil
	}
	rep := r.build(telemetry.Capture())
	fmt.Fprintf(os.Stderr, "\n== metrics (%s, wall %s) ==\n", r.command, time.Duration(rep.WallNs).Round(time.Microsecond))
	if err := rep.Metrics.WriteText(os.Stderr); err != nil {
		return err
	}
	out, err := os.Create(r.flags.Report)
	if err != nil {
		return fmt.Errorf("runreport: %w", err)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		out.Close()
		return fmt.Errorf("runreport: %w", err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("runreport: %w", err)
	}
	fmt.Fprintf(os.Stderr, "run report: %s\n", r.flags.Report)
	return nil
}

// build assembles the report from a snapshot (split from Finish for
// testability).
func (r *Run) build(snap telemetry.Snapshot) Report {
	rep := Report{
		Command:   r.command,
		Args:      os.Args[1:],
		GoVersion: runtime.Version(),
		//vqelint:ignore workerssemantics reporting the process setting, not resolving a worker count
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Qubits:     r.qubits,
		Terms:      r.terms,
		WallNs:     time.Since(r.start).Nanoseconds(),
		Metrics:    snap,
	}
	if len(r.extras) > 0 {
		rep.Extras = r.extras
	}
	if len(snap.Timers) > 0 {
		rep.PhaseNs = map[string]int64{}
		for _, name := range sortedTimerNames(snap.Timers) {
			rep.PhaseNs[name] = snap.Timers[name].TotalNs
		}
	}
	if w := snap.Gauges["state.pool.workers"]; w > 0 {
		pool := &PoolReport{
			Workers: w,
			Runs:    snap.Counters["state.pool.runs"],
			Chunks:  snap.Counters["state.pool.chunks"],
			Inline:  snap.Counters["state.pool.inline"],
			BusyNs:  snap.Timers["state.pool.busy"].TotalNs,
		}
		if rep.WallNs > 0 {
			pool.Utilization = float64(pool.BusyNs) / (float64(rep.WallNs) * float64(w))
		}
		rep.Pool = pool
	}
	return rep
}

func sortedTimerNames(m map[string]telemetry.TimerStat) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
