package runreport

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

func TestBuildDerivesPhasesAndPool(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-metrics"}); err != nil {
		t.Fatal(err)
	}
	r, err := Start("test", f)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		telemetry.Disable()
		telemetry.Reset()
	})
	r.SetQubits(16)
	r.SetQubits(12) // max wins
	r.SetTerms(4957)
	r.Set("speedup", 6.0)

	telemetry.GetTimer("vqe.energy").Observe(1000)
	telemetry.GetGauge("state.pool.workers").Set(4)
	telemetry.GetCounter("state.pool.runs").Add(10)
	telemetry.GetCounter("state.pool.chunks").Add(40)
	telemetry.GetTimer("state.pool.busy").Observe(2500)

	rep := r.build(telemetry.Capture())
	if rep.Qubits != 16 || rep.Terms != 4957 {
		t.Fatalf("qubits/terms = %d/%d", rep.Qubits, rep.Terms)
	}
	if rep.PhaseNs["vqe.energy"] != 1000 {
		t.Fatalf("phase_ns = %v", rep.PhaseNs)
	}
	if rep.Pool == nil || rep.Pool.Workers != 4 || rep.Pool.Runs != 10 || rep.Pool.BusyNs != 2500 {
		t.Fatalf("pool = %+v", rep.Pool)
	}
	if rep.Pool.Utilization <= 0 || rep.Pool.Utilization > 1 {
		t.Fatalf("utilization = %v", rep.Pool.Utilization)
	}
	if rep.Extras["speedup"] != 6.0 {
		t.Fatalf("extras = %v", rep.Extras)
	}
}

func TestFinishWritesReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-metrics", "-report", path}); err != nil {
		t.Fatal(err)
	}
	r, err := Start("test", f)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		telemetry.Disable()
		telemetry.Reset()
	})
	telemetry.GetCounter("state.gate.1q").Inc()
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Command != "test" || rep.WallNs <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Metrics.Counters["state.gate.1q"] != 1 {
		t.Fatalf("metrics counters = %v", rep.Metrics.Counters)
	}
}
