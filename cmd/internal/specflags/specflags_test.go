package specflags

import (
	"errors"
	"flag"
	"testing"

	"repro/internal/core"
	"repro/internal/runspec"
)

// parse registers the given groups on a fresh FlagSet, parses args, and
// assembles the spec — the exact sequence cmd/vqe and cmd/nwqsim run.
func parse(t *testing.T, g Groups, args ...string) (*runspec.RunSpec, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	s := Add(fs, g)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	return s.Spec()
}

func TestDefaultsMatchSpecDefaults(t *testing.T) {
	// Registering every family and parsing nothing must yield a spec whose
	// canonical hash equals the all-defaults RunSpec — the CLI default
	// vocabulary and the spec schema defaults are the same contract.
	spec, err := parse(t, All)
	if err != nil {
		t.Fatal(err)
	}
	if want := (&runspec.RunSpec{}).Hash(); spec.Hash() != want {
		t.Errorf("default flags hash %s != default spec hash %s", spec.Hash(), want)
	}
}

func TestMoleculeFlags(t *testing.T) {
	spec, err := parse(t, Molecule,
		"-molecule", "hubbard", "-sites", "3", "-t", "0.9", "-u", "2.5",
		"-electrons", "4", "-encoding", "bk", "-downfold", "2")
	if err != nil {
		t.Fatal(err)
	}
	m := spec.Molecule
	if m.Kind != "hubbard" || m.Sites != 3 || m.Hopping != 0.9 || m.Repulsion != 2.5 || m.Electrons != 4 {
		t.Errorf("hubbard flags not mapped: %+v", m)
	}
	if spec.Encoding != "bk" || spec.Downfold != 2 {
		t.Errorf("encoding/downfold not mapped: %q %d", spec.Encoding, spec.Downfold)
	}
}

func TestDistanceRewritesKind(t *testing.T) {
	spec, err := parse(t, Molecule, "-distance", "1.2")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Molecule.Kind != "h2-distance" || spec.Molecule.Distance != 1.2 {
		t.Errorf("-distance did not select the scan Hamiltonian: %+v", spec.Molecule)
	}
}

func TestDistanceRejectsNonH2(t *testing.T) {
	_, err := parse(t, Molecule, "-molecule", "water", "-distance", "1.2")
	if !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("expected ErrInvalidArgument for -distance with water, got %v", err)
	}
}

func TestAdaptQPEMutuallyExclusive(t *testing.T) {
	if _, err := parse(t, Execution, "-adapt", "-qpe"); !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("expected ErrInvalidArgument for -adapt -qpe, got %v", err)
	}
	spec, err := parse(t, Execution, "-adapt")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Algorithm != runspec.AlgorithmAdapt {
		t.Errorf("-adapt selected algorithm %q", spec.Algorithm)
	}
	spec, err = parse(t, Execution, "-qpe", "-ancillas", "5")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Algorithm != runspec.AlgorithmQPE || spec.QPE.Ancillas != 5 {
		t.Errorf("-qpe flags not mapped: alg=%q %+v", spec.Algorithm, spec.QPE)
	}
}

func TestFaultFlagsNeedClusterBackend(t *testing.T) {
	_, err := parse(t, Backend, "-fault-drop", "0.1")
	if !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("expected ErrInvalidArgument for -fault-drop on nwq-sv, got %v", err)
	}
	spec, err := parse(t, Backend, "-backend", "nwq-cluster", "-ranks", "8",
		"-fault-drop", "0.1", "-fault-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	f := spec.Backend.Fault
	if f == nil || f.DropProb != 0.1 || f.Seed != 7 {
		t.Fatalf("fault section not assembled: %+v", f)
	}
	if spec.Backend.Ranks != 8 {
		t.Errorf("ranks not mapped: %d", spec.Backend.Ranks)
	}
	// Zero fault probabilities leave the section nil so the spec hash stays
	// on the no-fault canonical form.
	spec, err = parse(t, Backend, "-backend", "nwq-cluster", "-fault-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Backend.Fault != nil {
		t.Errorf("fault section present without any probability: %+v", spec.Backend.Fault)
	}
}

func TestResilienceFlags(t *testing.T) {
	spec, err := parse(t, Resilience|Execution,
		"-checkpoint", "run.ckpt", "-checkpoint-every", "5", "-walltime", "00:30")
	if err != nil {
		t.Fatal(err)
	}
	r := spec.Resilience
	if r.CheckpointPath != "run.ckpt" || r.CheckpointEvery != 5 || r.Walltime != "00:30" {
		t.Errorf("resilience flags not mapped: %+v", r)
	}
}

func TestSpecValidates(t *testing.T) {
	// Spec() runs Validate, so nonsense flag values fail at assembly time
	// with the engine's own sentinel, not deep inside a run.
	if _, err := parse(t, Execution, "-optimizer", "adam"); !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("expected ErrInvalidArgument for -optimizer adam, got %v", err)
	}
}

func TestWorkersAccessor(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	s := Add(fs, Backend)
	if err := fs.Parse([]string{"-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	if s.Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", s.Workers())
	}
	// Without the Backend family the accessor degrades to the default.
	if w := (&Set{}).Workers(); w != 0 {
		t.Errorf("Workers() on empty set = %d, want 0", w)
	}
}
