// Package specflags is the one place the CLI flag vocabulary is defined:
// grouped flag families that parse straight into a runspec.RunSpec. Both
// cmd/vqe and cmd/nwqsim register the families they need (they used to
// duplicate the definitions, defaults, and help strings), and anything
// they can express, the vqed daemon accepts as the same spec over HTTP.
package specflags

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/runspec"
)

// Groups selects which flag families Add registers.
type Groups uint

const (
	// Molecule: -molecule -sites -t -u -orbitals -electrons -seed
	// -distance -downfold -encoding.
	Molecule Groups = 1 << iota
	// Execution: -mode -shots -caching -fusion -optimizer -adapt -qpe
	// -ancillas.
	Execution
	// Backend: -backend -ranks -workers -fault-*.
	Backend
	// Resilience: -checkpoint -checkpoint-every -resume -walltime.
	Resilience
	// All registers every family (cmd/vqe).
	All = Molecule | Execution | Backend | Resilience
)

// Set holds the parsed flag destinations; call Spec after flag.Parse.
type Set struct {
	groups Groups

	molecule  *string
	sites     *int
	hopping   *float64
	repulsion *float64
	orbitals  *int
	electrons *int
	seed      *uint64
	distance  *float64
	downfold  *int
	encoding  *string

	mode      *string
	shots     *int
	caching   *bool
	fusion    *bool
	optimizer *string
	adapt     *bool
	runQPE    *bool
	ancillas  *int

	backend      *string
	ranks        *int
	workers      *int
	faultSeed    *uint64
	faultDrop    *float64
	faultCorrupt *float64
	faultStall   *float64
	faultSilent  *float64
	faultMax     *int

	ckptPath  *string
	ckptEvery *int
	resume    *bool
	walltime  *string
}

// Add registers the selected flag families on fs and returns the
// destination set.
func Add(fs *flag.FlagSet, g Groups) *Set {
	s := &Set{groups: g}
	if g&Molecule != 0 {
		s.molecule = fs.String("molecule", "h2", "h2 | water | hubbard | synthetic")
		s.sites = fs.Int("sites", 2, "hubbard: chain length")
		s.hopping = fs.Float64("t", 1.0, "hubbard: hopping amplitude")
		s.repulsion = fs.Float64("u", 4.0, "hubbard: on-site repulsion")
		s.orbitals = fs.Int("orbitals", 3, "synthetic: spatial orbitals")
		s.electrons = fs.Int("electrons", 2, "hubbard/synthetic: electron count")
		s.seed = fs.Uint64("seed", 1, "synthetic: generator seed")
		s.distance = fs.Float64("distance", 0, "h2: bond length in Å (0 = equilibrium STO-3G model)")
		s.downfold = fs.Int("downfold", 0, "downfold to this many active orbitals before solving (0 = off)")
		s.encoding = fs.String("encoding", "jw", "fermion-to-qubit mapping: jw | bk | parity")
	}
	if g&Execution != 0 {
		s.mode = fs.String("mode", "direct", "energy evaluation: direct | rotated | sampled")
		s.shots = fs.Int("shots", 8192, "shots per group in sampled mode")
		s.caching = fs.Bool("caching", true, "post-ansatz state caching (rotated/sampled modes)")
		s.fusion = fs.Bool("fusion", false, "transpile ansatz circuits with gate fusion")
		s.optimizer = fs.String("optimizer", "lbfgs", "lbfgs | nelder-mead")
		s.adapt = fs.Bool("adapt", false, "run Adapt-VQE instead of fixed UCCSD")
		s.runQPE = fs.Bool("qpe", false, "run quantum phase estimation instead of VQE")
		s.ancillas = fs.Int("ancillas", 7, "qpe: ancilla qubits")
	}
	if g&Backend != 0 {
		s.backend = fs.String("backend", "nwq-sv", "accelerator registry name (see vqed /v1/capabilities)")
		s.ranks = fs.Int("ranks", 4, "cluster backend: rank count (power of two)")
		s.workers = fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		s.faultSeed = fs.Uint64("fault-seed", 42, "cluster: fault injector seed")
		s.faultDrop = fs.Float64("fault-drop", 0, "cluster: per-transfer drop probability")
		s.faultCorrupt = fs.Float64("fault-corrupt", 0, "cluster: per-transfer corruption probability (checksum-caught)")
		s.faultStall = fs.Float64("fault-stall", 0, "cluster: per-transfer transient-stall probability")
		s.faultSilent = fs.Float64("fault-silent", 0, "cluster: post-checksum silent-corruption probability (watchdog-caught)")
		s.faultMax = fs.Int("fault-max", 0, "cluster: cap on injected faults (0 = unlimited)")
	}
	if g&Resilience != 0 {
		s.ckptPath = fs.String("checkpoint", "", "write atomic CRC-verified optimizer snapshots to this file")
		s.ckptEvery = fs.Int("checkpoint-every", 10, "iterations between checkpoint writes")
		s.resume = fs.Bool("resume", false, "load -checkpoint before starting and continue from it")
		s.walltime = fs.String("walltime", "", "walltime budget (SLURM forms \"30\", \"HH:MM:SS\", \"D-HH:MM\" or Go \"90s\"); halts gracefully with best-so-far")
	}
	return s
}

// Spec assembles and validates the RunSpec the parsed flags describe.
// Call it after the owning FlagSet has been parsed.
func (s *Set) Spec() (*runspec.RunSpec, error) {
	spec := &runspec.RunSpec{}
	if s.groups&Molecule != 0 {
		spec.Molecule = runspec.MoleculeSpec{
			Kind:      *s.molecule,
			Sites:     *s.sites,
			Hopping:   *s.hopping,
			Repulsion: *s.repulsion,
			Orbitals:  *s.orbitals,
			Electrons: *s.electrons,
			Seed:      *s.seed,
		}
		if *s.distance > 0 {
			if *s.molecule != "h2" {
				return nil, fmt.Errorf("%w: -distance applies to -molecule h2 (got %q)", core.ErrInvalidArgument, *s.molecule)
			}
			spec.Molecule.Kind = "h2-distance"
			spec.Molecule.Distance = *s.distance
		}
		spec.Downfold = *s.downfold
		spec.Encoding = *s.encoding
	}
	if s.groups&Execution != 0 {
		spec.Mode = *s.mode
		spec.Shots = *s.shots
		spec.DisableCaching = !*s.caching
		spec.Fusion = *s.fusion
		spec.Optimizer.Method = *s.optimizer
		switch {
		case *s.adapt && *s.runQPE:
			return nil, fmt.Errorf("%w: -adapt and -qpe are mutually exclusive", core.ErrInvalidArgument)
		case *s.adapt:
			spec.Algorithm = runspec.AlgorithmAdapt
		case *s.runQPE:
			spec.Algorithm = runspec.AlgorithmQPE
			spec.QPE.Ancillas = *s.ancillas
		}
	}
	if s.groups&Backend != 0 {
		spec.Backend.Accelerator = *s.backend
		spec.Backend.Ranks = *s.ranks
		spec.Backend.Workers = *s.workers
		if *s.faultDrop > 0 || *s.faultCorrupt > 0 || *s.faultStall > 0 || *s.faultSilent > 0 {
			if *s.backend != "nwq-cluster" && *s.backend != "nwq-resilient" {
				return nil, fmt.Errorf("%w: -fault-* flags need -backend nwq-cluster or nwq-resilient (got %q)", core.ErrInvalidArgument, *s.backend)
			}
			spec.Backend.Fault = &runspec.FaultSpec{
				Seed:        *s.faultSeed,
				DropProb:    *s.faultDrop,
				CorruptProb: *s.faultCorrupt,
				StallProb:   *s.faultStall,
				SilentProb:  *s.faultSilent,
				MaxFaults:   *s.faultMax,
			}
		}
	}
	if s.groups&Resilience != 0 {
		spec.Resilience = runspec.ResilienceSpec{
			CheckpointPath:  *s.ckptPath,
			CheckpointEvery: *s.ckptEvery,
			Resume:          *s.resume,
			Walltime:        *s.walltime,
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Workers returns the parsed -workers value (Backend group), for command
// paths that run outside the spec engine.
func (s *Set) Workers() int {
	if s.workers == nil {
		return 0
	}
	return *s.workers
}
