// Command benchfigs regenerates every figure of the paper's evaluation as
// textual data series (one row per point), matching the quantities plotted
// in Wang et al., SC-W 2023.
//
//	benchfigs -fig 1a        # UCCSD gate count vs qubits
//	benchfigs -fig 1b        # Pauli terms vs qubits
//	benchfigs -fig 1c        # state-vector memory vs qubits
//	benchfigs -fig 3         # caching vs non-caching gate count
//	benchfigs -fig 4         # gate fusion table
//	benchfigs -fig 5         # Adapt-VQE convergence
//	benchfigs -fig expect    # batched vs per-term expectation speedup
//	benchfigs -fig fusion    # fused vs unfused wall-clock speedup
//	benchfigs -fig all       # everything
//	benchfigs -fig all -fast # reduced sweeps for quick smoke runs
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/cmd/internal/runreport"
	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/kernel/calib"
	"repro/internal/linalg"
	"repro/internal/pauli"
	"repro/internal/qpe"
	"repro/internal/state"
	"repro/internal/vqe"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1a, 1b, 1c, 3, 4, 5, expect, fusion, all")
	fast := flag.Bool("fast", false, "reduced sweeps (smoke mode)")
	failBelow := flag.Float64("fail-below", 0,
		"exit non-zero if the expect figure's minimum batched-vs-per-term speedup falls below this factor (0 = no gate)")
	failBelowFusion := flag.Float64("fail-below-fusion", 0,
		"exit non-zero if the fusion figure's minimum fused-vs-unfused speedup falls below this factor (0 = no gate)")
	obsFlags := runreport.AddFlags(flag.CommandLine)
	calibFlags := calib.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := calibFlags.Setup(); err != nil {
		fail(err)
	}

	run := func(name string, f func(bool)) {
		if *fig == "all" || *fig == name {
			start := time.Now()
			f(*fast)
			fmt.Printf("# figure %s done in %.1fs\n\n", name, time.Since(start).Seconds())
		}
	}
	known := map[string]bool{"1a": true, "1b": true, "1c": true, "3": true, "4": true, "5": true, "expect": true, "fusion": true, "extras": true, "all": true}
	if !known[*fig] {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}

	var err error
	rep, err = runreport.Start("benchfigs", obsFlags)
	if err != nil {
		fail(err)
	}

	run("1a", fig1a)
	run("1b", fig1b)
	run("1c", fig1c)
	run("3", fig3)
	run("4", fig4)
	run("5", fig5)
	run("expect", figExpect)
	run("fusion", figFusion)
	run("extras", extras)

	if !math.IsInf(minSpeedup, 1) {
		rep.Set("expect.min_speedup_x", minSpeedup)
	}
	if !math.IsInf(minFusionSpeedup, 1) {
		rep.Set("fusion.min_speedup_x", minFusionSpeedup)
	}
	if err := rep.Finish(); err != nil {
		fail(err)
	}
	if *failBelow > 0 {
		if math.IsInf(minSpeedup, 1) {
			fmt.Fprintln(os.Stderr, "benchfigs: -fail-below set but the expect figure did not run")
			os.Exit(1)
		}
		if minSpeedup < *failBelow {
			fmt.Fprintf(os.Stderr, "benchfigs: batched expectation speedup %.2fx below required %.2fx\n",
				minSpeedup, *failBelow)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchfigs: speedup gate passed (min %.2fx >= %.2fx)\n", minSpeedup, *failBelow)
	}
	if *failBelowFusion > 0 {
		if math.IsInf(minFusionSpeedup, 1) {
			fmt.Fprintln(os.Stderr, "benchfigs: -fail-below-fusion set but the fusion figure did not run")
			os.Exit(1)
		}
		if minFusionSpeedup < *failBelowFusion {
			fmt.Fprintf(os.Stderr, "benchfigs: fused execution speedup %.2fx below required %.2fx\n",
				minFusionSpeedup, *failBelowFusion)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchfigs: fusion gate passed (min %.2fx >= %.2fx)\n", minFusionSpeedup, *failBelowFusion)
	}
}

// rep is the process run report; minSpeedup tracks the smallest
// batched-vs-per-term speedup figExpect observed (the -fail-below gate),
// minFusionSpeedup the smallest fused-vs-unfused speedup figFusion
// observed (the -fail-below-fusion gate).
var (
	rep              *runreport.Run
	minSpeedup       = math.Inf(1)
	minFusionSpeedup = math.Inf(1)
)

// sweep returns the qubit counts for the scaling figures.
func sweep(fast bool) []int {
	if fast {
		return []int{12, 16, 20}
	}
	return []int{12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
}

func uccsdGates(qubits int) (params, gates int) {
	u, err := ansatz.NewUCCSD(qubits, 8)
	if err != nil {
		fail(err)
	}
	c := u.Circuit(make([]float64, u.NumParameters()))
	return u.NumParameters(), c.GateCount()
}

func fig1a(fast bool) {
	fmt.Println("# Figure 1a — Number of gates in UCCSD ansatz vs number of qubits")
	fmt.Println("# paper: rises to ~2.5e6 gates at 30 qubits (quartic growth)")
	fmt.Println("qubits\tparameters\tgates")
	for _, n := range sweep(fast) {
		p, g := uccsdGates(n)
		fmt.Printf("%d\t%d\t%d\n", n, p, g)
	}
}

func fig1b(fast bool) {
	fmt.Println("# Figure 1b — Pauli terms in the downfolded H2O-like observable vs qubits")
	fmt.Println("# paper: ~30000 terms at 30 qubits for H2O/cc-pV5Z downfolded observables")
	fmt.Println("qubits\tterms")
	for _, n := range sweep(fast) {
		h := chem.QubitHamiltonian(chem.WaterLikeScaled(n / 2))
		fmt.Printf("%d\t%d\n", n, h.NumTerms())
	}
}

func fig1c(fast bool) {
	fmt.Println("# Figure 1c — State-vector memory vs qubits (16 B/amplitude)")
	fmt.Println("# paper: exponential growth, ~16 GB at 30 qubits")
	fmt.Println("qubits\tbytes\tGiB")
	for _, n := range sweep(fast) {
		bytes := state.MemoryBytes(n)
		fmt.Printf("%d\t%d\t%.3f\n", n, bytes, float64(bytes)/(1<<30))
	}
}

func fig3(fast bool) {
	fmt.Println("# Figure 3 — Gates per VQE energy evaluation: non-caching vs caching")
	fmt.Println("# paper: caching saves 3–5 orders of magnitude, growing with size")
	fmt.Println("qubits\tterms\tansatz_gates\tnoncaching\tcaching\tsavings_x")
	for _, n := range sweep(fast) {
		h := chem.QubitHamiltonian(chem.WaterLikeScaled(n / 2))
		_, gates := uccsdGates(n)
		gc := vqe.CostModel(h, gates)
		fmt.Printf("%d\t%d\t%d\t%d\t%d\t%.0f\n",
			n, gc.NumTerms, gates, gc.NonCachingTotal, gc.CachingTotal, gc.SavingsFactor())
	}
}

func fig4(bool) {
	fmt.Println("# Figure 4 — Gate counts for UCCSD circuits before/after fusion")
	fmt.Println("# paper: 221→68 (4q), 2283→954 (6q), 10809→5208 (8q): >50% reduction")
	fmt.Println("qubits\toriginal\tfused\treduction_%")
	for _, n := range []int{4, 6, 8} {
		u, err := ansatz.NewUCCSD(n, n/2)
		if err != nil {
			fail(err)
		}
		c := u.Circuit(make([]float64, u.NumParameters()))
		f := circuit.Fuse(c, 2)
		orig, fused := c.GateCount(), f.GateCount()
		fmt.Printf("%d\t%d\t%d\t%.1f\n", n, orig, fused, 100*(1-float64(fused)/float64(orig)))
	}
}

func fig5(fast bool) {
	fmt.Println("# Figure 5 — Adapt-VQE convergence on the 12-qubit downfolded H2O-like model")
	fmt.Println("# paper: reaches 1 mHa chemical accuracy around iteration 16")
	m := chem.WaterLike()
	h := chem.QubitHamiltonian(m)
	fci, err := chem.FCI(m)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# FCI reference energy: %.8f   HF energy: %.8f\n", fci.Energy, chem.HartreeFockEnergy(m))
	pool, err := ansatz.NewPool(12, 8)
	if err != nil {
		fail(err)
	}
	maxIter := 25
	if fast {
		maxIter = 6
	}
	res, err := vqe.Adapt(h, pool, 12, 8, vqe.AdaptOptions{
		MaxIterations: maxIter,
		Reference:     fci.Energy,
		EnergyTol:     core.ChemicalAccuracy,
	})
	if err != nil {
		fail(err)
	}
	fmt.Println("iteration\toperator\tenergy\tdelta_E_Ha\tdepth\tgates")
	for _, it := range res.History {
		fmt.Printf("%d\t%s\t%.8f\t%.6f\t%d\t%d\n",
			it.Iteration, it.Operator, it.Energy, it.ErrorVsRef, it.CircuitDepth, it.GateCount)
	}
	status := "converged to chemical accuracy"
	if !res.Converged {
		status = "NOT converged"
	}
	fmt.Printf("# %s after %d iterations (final |ΔE| = %.3f mHa)\n",
		status, len(res.History), 1000*math.Abs(res.Energy-fci.Energy))
}

// figExpect measures the batched multi-term expectation engine against the
// naive per-term evaluator on downfolded H2O-like observables: same
// energies, one amplitude sweep per X-mask group instead of one per term.
func figExpect(fast bool) {
	fmt.Println("# Expectation engine — batched X-mask grouping vs per-term sweeps (serial)")
	fmt.Println("# one O(2^n) pass per X-mask group scores every term of the group at once")
	fmt.Println("qubits\tterms\txgroups\tper_term_ms\tbatched_ms\tspeedup_x\tabs_dev")
	widths := []int{12, 14, 16, 18}
	if fast {
		widths = []int{10, 12}
	}
	for _, n := range widths {
		h := chem.QubitHamiltonian(chem.WaterLikeScaled(n / 2))
		c := circuit.New(n)
		for q := 0; q < n; q++ {
			c.X(q)
			c.RY(0.1*float64(q+1), q)
		}
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
		}
		s := state.New(n, state.Options{Workers: 1})
		s.Run(c)
		serialOpts := pauli.ExpectationOptions{Workers: 1}

		t0 := time.Now()
		naive := pauli.ExpectationNaive(s, h, serialOpts)
		perTerm := time.Since(t0)

		plan := pauli.NewPlan(h)
		t0 = time.Now()
		batched := plan.Evaluate(s, serialOpts)
		batchedT := time.Since(t0)

		speedup := perTerm.Seconds() / batchedT.Seconds()
		if speedup < minSpeedup {
			minSpeedup = speedup
		}
		rep.SetQubits(n)
		rep.SetTerms(plan.NumTerms())
		fmt.Printf("%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.1e\n",
			n, plan.NumTerms(), plan.NumGroups(),
			float64(perTerm.Microseconds())/1000, float64(batchedT.Microseconds())/1000,
			speedup, math.Abs(naive-batched))
	}
}

// fusionAnsatz builds the deep hardware-efficient ansatz the fusion
// benchmark runs: logical 1q rotations lowered to the native
// RZ·SX·RZ·SX·RZ Euler chain (the shape compiled VQE circuits actually
// have) plus CX-entangler blocks, parameters drawn from the seed.
func fusionAnsatz(n, layers int, seed uint64) *circuit.Circuit {
	rng := core.NewRNG(seed)
	theta := func() float64 { return 2 * math.Pi * (rng.Float64() - 0.5) }
	c := circuit.New(n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RZ(theta(), q)
			c.SX(q)
			c.RZ(theta(), q)
			c.SX(q)
			c.RZ(theta(), q)
		}
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
			c.RZ(theta(), q+1)
			c.CX(q, q+1)
		}
	}
	return c
}

// figFusion measures the runtime payoff of gate fusion (the paper's
// Figure 4 shows the gate-count reduction; this shows the wall clock it
// buys): the same deep ansatz executed gate-at-a-time vs through
// CompileFused + RunFused, compile time included — a VQE loop pays the
// compile on every parameter set, so excluding it would overstate the
// win. Serial execution isolates the memory-pass reduction from pool
// scheduling effects.
func figFusion(fast bool) {
	fmt.Println("# Gate fusion — fused vs unfused wall clock on a deep native-gate HEA ansatz")
	fmt.Println("# compile time is included in the fused column (paid per VQE energy evaluation)")
	fmt.Println("qubits\tgates\tfused_gates\treduction_%\tunfused_ms\tfused_ms\tspeedup_x\tabs_dev")
	widths := []int{12, 14, 16}
	reps := 3
	if fast {
		widths = []int{12}
	}
	for _, n := range widths {
		c := fusionAnsatz(n, 8, uint64(41+n))

		var ref *state.State
		unfused := time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			s := state.New(n, state.Options{Workers: 1})
			t0 := time.Now()
			s.Run(c)
			if d := time.Since(t0); d < unfused {
				unfused = d
			}
			ref = s
		}

		var prog *state.FusedProgram
		var got *state.State
		fused := time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			s := state.New(n, state.Options{Workers: 1})
			t0 := time.Now()
			p := state.CompileFused(c)
			s.RunFused(p)
			if d := time.Since(t0); d < fused {
				fused = d
			}
			prog, got = p, s
		}

		dev := 0.0
		ra, ga := ref.Amplitudes(), got.Amplitudes()
		for i := range ra {
			if d := cmplxAbs(ra[i] - ga[i]); d > dev {
				dev = d
			}
		}
		speedup := unfused.Seconds() / fused.Seconds()
		if speedup < minFusionSpeedup {
			minFusionSpeedup = speedup
		}
		rep.SetQubits(n)
		fmt.Printf("%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.2f\t%.1e\n",
			n, prog.GatesBefore(), prog.GatesAfter(),
			100*(1-float64(prog.GatesAfter())/float64(prog.GatesBefore())),
			float64(unfused.Microseconds())/1000, float64(fused.Microseconds())/1000,
			speedup, dev)
	}
}

func cmplxAbs(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}

// extras prints the extension measurements: encoding locality, qubit
// tapering, and Krylov-vs-VQE convergence.
func extras(bool) {
	fmt.Println("# Extras A — fermion-to-qubit encoding locality (H2O-like, 16 qubits)")
	fmt.Println("encoding\tterms\tavg_weight\tmax_weight")
	fh := chem.FermionicHamiltonian(chem.WaterLikeScaled(8))
	for _, mk := range []struct {
		name string
		make func(int) (*fermion.Encoding, error)
	}{
		{"jordan-wigner", fermion.JordanWignerEncoding},
		{"bravyi-kitaev", fermion.BravyiKitaevEncoding},
		{"parity", fermion.ParityEncoding},
	} {
		enc, err := mk.make(16)
		if err != nil {
			fail(err)
		}
		q, err := enc.Transform(fh)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s\t%d\t%.2f\t%d\n", mk.name, q.NumTerms(), fermion.AverageWeight(q), fermion.MaxWeight(q))
	}

	fmt.Println("\n# Extras B — Z2-symmetry qubit tapering")
	fmt.Println("molecule\tqubits_before\tqubits_after\tground_preserved")
	for _, m := range []*chem.MolecularData{chem.H2(), chem.Synthetic(chem.SyntheticOptions{NumOrbitals: 3, NumElectrons: 2, Seed: 8})} {
		res, err := chem.TaperedHamiltonian(m)
		if err != nil {
			fail(err)
		}
		fci, err := chem.FCI(m)
		if err != nil {
			fail(err)
		}
		e, _, err := linalg.LanczosGround(pauli.OpMatVec{Op: res.Tapered, N: res.NumQubits}, linalg.LanczosOptions{})
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s\t%d\t%d\t%v\n", m.Name, m.NumSpinOrbitals(), res.NumQubits, e <= fci.Energy+1e-8)
	}

	fmt.Println("\n# Extras C — quantum Krylov diagonalization vs dimension (H2)")
	fmt.Println("dimension\tE_krylov\tdelta_vs_FCI")
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, err := chem.FCI(m)
	if err != nil {
		fail(err)
	}
	prep := qpe.HartreeFockPrep(4, 2)
	for _, dim := range []int{1, 2, 3, 4} {
		res, err := vqe.KrylovDiagonalize(h, 4, prep, vqe.KrylovOptions{Dimension: dim, Exact: true})
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d\t%.8f\t%.2e\n", dim, res.Energies[0], math.Abs(res.Energies[0]-fci.Energy))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchfigs:", err)
	os.Exit(1)
}
