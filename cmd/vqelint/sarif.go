package main

// Minimal SARIF 2.1.0 emitter: one run, one rule per suite analyzer,
// one result per kept finding. Only the subset of the schema that CI
// code-scanning uploads and human SARIF viewers consume is produced.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF serializes the kept findings. File URIs are module-root
// relative (slash separated) when possible so the report is stable
// across checkouts.
func writeSARIF(path, modRoot string, analyzers []*analysis.Analyzer, kept []finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(kept))
	for _, f := range kept {
		uri := f.pos.Filename
		if modRoot != "" {
			if rel, err := filepath.Rel(modRoot, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  f.diag.Category,
			Level:   "warning",
			Message: sarifMessage{Text: f.diag.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: f.pos.Line, StartColumn: f.pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "vqelint", Rules: rules}}, Results: results}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
