// Command vqelint runs the project's static-analysis suite (see
// internal/analysis): hotpathalloc, workerssemantics, timerpair,
// panicdiscipline, and floatcompare — the machine-checked form of the
// invariants the engine's performance claims rest on.
//
// Standalone over package patterns:
//
//	go run ./cmd/vqelint ./...
//	go run ./cmd/vqelint -fix ./internal/...   # apply suggested fixes
//	go run ./cmd/vqelint -only hotpathalloc,timerpair ./internal/state/
//
// As a go vet tool (the form CI uses, so vet's caching and test-file
// coverage apply):
//
//	go build -o bin/vqelint ./cmd/vqelint
//	go vet -vettool=bin/vqelint ./...
//
// Exit status: 0 clean, 1 internal error, 2 findings reported.
package main

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// `go vet -vettool` handshakes: version/cache fingerprint and flag
	// discovery happen before any cfg is passed.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V=") {
		fmt.Println("vqelint version 1.0.0")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}

	var (
		fix  = flag.Bool("fix", false, "apply suggested fixes to the source files")
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list the suite's analyzers and exit")
		js   = flag.Bool("json", false, "emit diagnostics as JSON")
	)
	flag.Parse()

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fatal(err)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetTool(args[0], analyzers))
	}
	os.Exit(runStandalone(args, analyzers, *fix, *js))
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analysis.Suite(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a := analysis.ByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// runStandalone loads packages by pattern with the loader and analyzes
// them in place.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, fix, js bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	exit := 0
	var all []jsonDiag
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		if len(diags) == 0 {
			continue
		}
		exit = 2
		if fix {
			fixed, err := applyFixes(pkg, diags)
			if err != nil {
				fatal(err)
			}
			diags = fixed
			if len(diags) == 0 {
				exit = 0
			}
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if js {
				all = append(all, jsonDiag{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Category, Message: d.Message,
				})
			} else {
				fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, d.Category, d.Message)
			}
		}
	}
	if js {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fatal(err)
		}
	}
	return exit
}

type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// applyFixes rewrites the package's files with every suggested fix and
// returns the diagnostics that had no fix (still outstanding).
func applyFixes(pkg *analysis.Package, diags []analysis.Diagnostic) ([]analysis.Diagnostic, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	var remaining []analysis.Diagnostic
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			remaining = append(remaining, d)
			continue
		}
		for _, te := range d.SuggestedFixes[0].TextEdits {
			p0, p1 := pkg.Fset.Position(te.Pos), pkg.Fset.Position(te.End)
			if p0.Filename != p1.Filename {
				return nil, fmt.Errorf("fix spans files: %s vs %s", p0.Filename, p1.Filename)
			}
			perFile[p0.Filename] = append(perFile[p0.Filename], edit{p0.Offset, p1.Offset, te.NewText})
		}
	}
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		prev := len(src) + 1
		for _, e := range edits {
			if e.end > prev || e.end > len(src) || e.start > e.end {
				return nil, fmt.Errorf("overlapping or out-of-range fixes in %s", file)
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
			prev = e.start
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "vqelint: fixed %d site(s) in %s\n", len(edits), file)
	}
	return remaining, nil
}

// vetConfig is the JSON unit-checking protocol the go command speaks to
// -vettool binaries: one invocation per package, files and export-data
// locations supplied, facts exchanged through the Vetx files (this suite
// is fact-free, so an empty gob is written).
type vetConfig struct {
	ID           string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

func runVetTool(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing vet config %s: %v", cfgPath, err))
	}
	if cfg.VetxOutput != "" {
		if err := writeEmptyVetx(cfg.VetxOutput); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0 // downstream packages only need our (empty) facts
	}

	loader := analysis.NewLoader(cfg.Dir)
	loader.SetExportResolver(func(path string) string {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		return cfg.PackageFile[path]
	})
	var files []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	pkg, err := loader.LoadFiles(cfg.ImportPath, cfg.Dir, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(err)
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Category, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// writeEmptyVetx satisfies the protocol's facts output: the go command
// requires the file to exist after the tool runs.
func writeEmptyVetx(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// An empty gob stream is a valid "no facts" payload for any reader.
	_ = gob.NewEncoder(f)
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vqelint:", err)
	os.Exit(1)
}
