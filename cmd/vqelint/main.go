// Command vqelint runs the project's static-analysis suite (see
// internal/analysis): hotpathalloc, workerssemantics, timerpair,
// panicdiscipline, floatcompare, lockdiscipline, ctxflow, and
// goroutinelife — the machine-checked form of the invariants the
// engine's performance and concurrency claims rest on.
//
// Standalone over package patterns:
//
//	go run ./cmd/vqelint ./...
//	go run ./cmd/vqelint -fix ./internal/...   # apply suggested fixes
//	go run ./cmd/vqelint -only lockdiscipline,ctxflow ./internal/server/
//	go run ./cmd/vqelint -sarif vqelint.sarif ./...
//	go run ./cmd/vqelint -update-baseline ./...
//	go run ./cmd/vqelint -unused-ignores ./...
//
// Findings recorded in lint_baseline.json at the module root are
// accepted debt: they are counted but do not fail the run. The baseline
// is keyed by analyzer + file + function + message hash (never line
// numbers), loaded automatically (-baseline auto) or from an explicit
// path; -baseline none disables it. -update-baseline rewrites the file
// from the current findings.
//
// As a go vet tool (the form CI uses, so vet's caching and test-file
// coverage apply; the baseline is auto-discovered at the module root
// because vet forwards no tool flags):
//
//	go build -o bin/vqelint ./cmd/vqelint
//	go vet -vettool=bin/vqelint ./...
//
// Exit status: 0 clean, 1 internal error, 2 findings reported (or stale
// ignores with -unused-ignores).
package main

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// baselineFile is the committed baseline's name at the module root.
const baselineFile = "lint_baseline.json"

func main() {
	// `go vet -vettool` handshakes: version/cache fingerprint and flag
	// discovery happen before any cfg is passed.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V=") {
		fmt.Println("vqelint version 1.1.0")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}

	var (
		fix       = flag.Bool("fix", false, "apply suggested fixes to the source files")
		only      = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list      = flag.Bool("list", false, "list the suite's analyzers and exit")
		js        = flag.Bool("json", false, "emit diagnostics as JSON")
		sarifPath = flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file")
		baseline  = flag.String("baseline", "auto", `baseline file: "auto" finds lint_baseline.json at the module root, "none" disables`)
		update    = flag.Bool("update-baseline", false, "rewrite the baseline from the current findings and exit")
		unused    = flag.Bool("unused-ignores", false, "report //vqelint:ignore directives that suppress nothing")
	)
	flag.Parse()

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fatal(err)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetTool(args[0], analyzers))
	}
	os.Exit(runStandalone(args, analyzers, options{
		fix:       *fix,
		js:        *js,
		sarifPath: *sarifPath,
		baseline:  *baseline,
		update:    *update,
		unused:    *unused,
	}))
}

type options struct {
	fix       bool
	js        bool
	sarifPath string
	baseline  string
	update    bool
	unused    bool
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analysis.Suite(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a := analysis.ByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// isFullSuite reports whether the selection covers every suite analyzer
// (which is what judging `//vqelint:ignore all` staleness requires).
func isFullSuite(analyzers []*analysis.Analyzer) bool {
	if len(analyzers) != len(analysis.Suite()) {
		return false
	}
	have := map[string]bool{}
	for _, a := range analyzers {
		have[a.Name] = true
	}
	for _, a := range analysis.Suite() {
		if !have[a.Name] {
			return false
		}
	}
	return true
}

// resolveBaselinePath turns the -baseline flag into a file path ("" = no
// baseline). mode "auto" walks up from dir to the module root.
func resolveBaselinePath(mode, dir string) string {
	switch mode {
	case "", "none":
		return ""
	case "auto":
		if root := analysis.FindModuleRoot(dir); root != "" {
			return filepath.Join(root, baselineFile)
		}
		return ""
	default:
		return mode
	}
}

// A finding is one kept diagnostic with its resolved position and
// baseline key material.
type finding struct {
	pos   token.Position
	diag  analysis.Diagnostic
	entry analysis.BaselineEntry
}

// runStandalone loads packages by pattern with the loader and analyzes
// them in place.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, opts options) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}

	baselinePath := resolveBaselinePath(opts.baseline, ".")
	var base *analysis.Baseline
	if baselinePath != "" && !opts.update {
		base, err = analysis.LoadBaseline(baselinePath)
		if err != nil {
			fatal(err)
		}
	} else {
		base = &analysis.Baseline{Version: analysis.BaselineVersion}
	}
	matcher := analysis.NewBaselineMatcher(base)
	modRoot := analysis.FindModuleRoot(".")
	complete := isFullSuite(analyzers)

	var (
		kept       []finding
		baselined  int
		suppressed int
		stale      []finding // position-resolved stale directives
	)
	for _, pkg := range pkgs {
		res, err := analysis.RunDetailed(pkg, analyzers, complete)
		if err != nil {
			fatal(err)
		}
		suppressed += res.Suppressed
		for _, s := range res.Stale {
			stale = append(stale, finding{
				pos:  pkg.Fset.Position(s.Pos),
				diag: analysis.Diagnostic{Category: "unused-ignore", Message: fmt.Sprintf("stale //vqelint:ignore %s: it suppresses nothing; delete it", strings.Join(s.Names, ","))},
			})
		}
		diags := res.Diagnostics
		if opts.fix && len(diags) > 0 {
			diags, err = applyFixes(pkg, diags)
			if err != nil {
				fatal(err)
			}
		}
		for _, d := range diags {
			f := finding{
				pos:   pkg.Fset.Position(d.Pos),
				diag:  d,
				entry: analysis.EntryFor(pkg.Fset, pkg.Files, modRoot, d),
			}
			if !opts.update && matcher.Match(f.entry) {
				baselined++
				continue
			}
			kept = append(kept, f)
		}
	}

	if opts.update {
		if baselinePath == "" {
			baselinePath = baselineFile
		}
		out := &analysis.Baseline{Version: analysis.BaselineVersion}
		agg := map[string]*analysis.BaselineEntry{}
		for _, f := range kept {
			e := f.entry
			key := e.Analyzer + "\x00" + e.File + "\x00" + e.Func + "\x00" + e.Hash
			if prev, ok := agg[key]; ok {
				prev.Count++
			} else {
				copy := e
				agg[key] = &copy
			}
		}
		for _, e := range agg {
			out.Findings = append(out.Findings, *e)
		}
		if err := analysis.WriteBaseline(baselinePath, out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vqelint: wrote %d baseline entr%s to %s\n",
			len(out.Findings), plural(len(out.Findings), "y", "ies"), baselinePath)
		return 0
	}

	if opts.sarifPath != "" {
		if err := writeSARIF(opts.sarifPath, modRoot, analyzers, kept); err != nil {
			fatal(err)
		}
	}

	if opts.js {
		all := make([]jsonDiag, 0, len(kept))
		for _, f := range kept {
			all = append(all, jsonDiag{
				File: f.pos.Filename, Line: f.pos.Line, Col: f.pos.Column,
				Analyzer: f.diag.Category, Message: f.diag.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range kept {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.pos, f.diag.Category, f.diag.Message)
		}
	}
	if opts.unused {
		for _, f := range stale {
			fmt.Fprintf(os.Stderr, "%s: %s\n", f.pos, f.diag.Message)
		}
	}
	fmt.Fprintf(os.Stderr, "vqelint: %d finding%s, %d baselined, %d suppressed by directives, %d stale ignore%s\n",
		len(kept), plural(len(kept), "", "s"), baselined, suppressed,
		len(stale), plural(len(stale), "", "s"))

	if len(kept) > 0 || (opts.unused && len(stale) > 0) {
		return 2
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// applyFixes rewrites the package's files with every suggested fix and
// returns the diagnostics that had no fix (still outstanding).
func applyFixes(pkg *analysis.Package, diags []analysis.Diagnostic) ([]analysis.Diagnostic, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	var remaining []analysis.Diagnostic
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			remaining = append(remaining, d)
			continue
		}
		for _, te := range d.SuggestedFixes[0].TextEdits {
			p0, p1 := pkg.Fset.Position(te.Pos), pkg.Fset.Position(te.End)
			if p0.Filename != p1.Filename {
				return nil, fmt.Errorf("fix spans files: %s vs %s", p0.Filename, p1.Filename)
			}
			perFile[p0.Filename] = append(perFile[p0.Filename], edit{p0.Offset, p1.Offset, te.NewText})
		}
	}
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		prev := len(src) + 1
		for _, e := range edits {
			if e.end > prev || e.end > len(src) || e.start > e.end {
				return nil, fmt.Errorf("overlapping or out-of-range fixes in %s", file)
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
			prev = e.start
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "vqelint: fixed %d site(s) in %s\n", len(edits), file)
	}
	return remaining, nil
}

// vetConfig is the JSON unit-checking protocol the go command speaks to
// -vettool binaries: one invocation per package, files and export-data
// locations supplied, facts exchanged through the Vetx files (this suite
// is fact-free, so an empty gob is written).
type vetConfig struct {
	ID           string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

func runVetTool(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing vet config %s: %v", cfgPath, err))
	}
	if cfg.VetxOutput != "" {
		if err := writeEmptyVetx(cfg.VetxOutput); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0 // downstream packages only need our (empty) facts
	}

	loader := analysis.NewLoader(cfg.Dir)
	loader.SetExportResolver(func(path string) string {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		return cfg.PackageFile[path]
	})
	var files []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	pkg, err := loader.LoadFiles(cfg.ImportPath, cfg.Dir, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(err)
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		fatal(err)
	}
	// go vet forwards no tool flags, so the baseline is auto-discovered
	// at the module root (same default as standalone -baseline auto).
	modRoot := analysis.FindModuleRoot(cfg.Dir)
	matcher := analysis.NewBaselineMatcher(&analysis.Baseline{Version: analysis.BaselineVersion})
	if modRoot != "" {
		if base, err := analysis.LoadBaseline(filepath.Join(modRoot, baselineFile)); err == nil {
			matcher = analysis.NewBaselineMatcher(base)
		}
	}
	exit := 0
	for _, d := range diags {
		if matcher.Match(analysis.EntryFor(pkg.Fset, pkg.Files, modRoot, d)) {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Category, d.Message)
		exit = 2
	}
	return exit
}

// writeEmptyVetx satisfies the protocol's facts output: the go command
// requires the file to exist after the tool runs.
func writeEmptyVetx(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// An empty gob stream is a valid "no facts" payload for any reader.
	_ = gob.NewEncoder(f)
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vqelint:", err)
	os.Exit(1)
}
