// Command hamiltonian generates, transforms, and inspects qubit
// observables in the text interchange format (one "coeff label" line per
// Pauli term).
//
//	hamiltonian -molecule h2                      # dump the JW observable
//	hamiltonian -molecule h2 -encoding bk         # Bravyi–Kitaev mapping
//	hamiltonian -molecule h2 -taper               # Z2-tapered operator
//	hamiltonian -molecule synthetic -orbitals 4 -electrons 4 -downfold 2
//	hamiltonian -info file.ham                    # inspect an operator file
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/runreport"
	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/linalg"
	"repro/internal/pauli"
)

func main() {
	var (
		molecule  = flag.String("molecule", "h2", "h2 | water | hubbard | synthetic")
		distance  = flag.Float64("distance", 0.7414, "h2: bond length in Å (uses analytic integrals when ≠ 0.7414)")
		sites     = flag.Int("sites", 2, "hubbard: chain length")
		hopping   = flag.Float64("t", 1.0, "hubbard: hopping")
		repulsion = flag.Float64("u", 4.0, "hubbard: on-site U")
		orbitals  = flag.Int("orbitals", 3, "synthetic: spatial orbitals")
		electrons = flag.Int("electrons", 2, "hubbard/synthetic: electrons")
		seed      = flag.Uint64("seed", 1, "synthetic: seed")
		encoding  = flag.String("encoding", "jw", "jw | bk | parity")
		taper     = flag.Bool("taper", false, "apply Z2-symmetry tapering (JW only)")
		downfold  = flag.Int("downfold", 0, "downfold to this many active orbitals first (0 = off)")
		scf       = flag.Bool("scf", false, "run RHF and emit the MO-basis observable (needed for site-basis models)")
		info      = flag.String("info", "", "inspect an operator file instead of generating")
	)
	obsFlags := runreport.AddFlags(flag.CommandLine)
	flag.Parse()

	rep, err := runreport.Start("hamiltonian", obsFlags)
	if err != nil {
		fail(err)
	}

	if *info != "" {
		inspect(*info)
		if err := rep.Finish(); err != nil {
			fail(err)
		}
		return
	}

	m, err := buildMolecule(*molecule, *distance, *sites, *hopping, *repulsion, *orbitals, *electrons, *seed)
	if err != nil {
		fail(err)
	}
	if *scf {
		res, err := chem.RHF(m, 0, 0)
		if err != nil {
			fail(err)
		}
		m = res.Molecule
	}
	n := m.NumSpinOrbitals()

	var op *pauli.Op
	switch {
	case *downfold > 0:
		res, err := chem.Downfold(m, chem.DownfoldOptions{ActiveOrbitals: *downfold, Order: 2})
		if err != nil {
			fail(err)
		}
		op = res.Qubit
		n = 2 * *downfold
	case *taper:
		if *encoding != "jw" {
			fail(fmt.Errorf("%w: tapering implemented for the JW mapping", core.ErrInvalidArgument))
		}
		res, err := chem.TaperedHamiltonian(m)
		if err != nil {
			fail(err)
		}
		op = res.Tapered
		n = res.NumQubits
	default:
		op, err = encode(m, *encoding)
		if err != nil {
			fail(err)
		}
	}

	fmt.Printf("# %s | %d qubits | %d terms | encoding=%s taper=%v downfold=%d\n",
		m.Name, n, op.NumTerms(), *encoding, *taper, *downfold)
	if err := pauli.WriteOp(os.Stdout, op, n); err != nil {
		fail(err)
	}
	rep.SetQubits(n)
	rep.SetTerms(op.NumTerms())
	if err := rep.Finish(); err != nil {
		fail(err)
	}
}

func buildMolecule(kind string, distance float64, sites int, t, u float64, orbitals, electrons int, seed uint64) (*chem.MolecularData, error) {
	switch kind {
	case "h2":
		if !core.AlmostEqual(distance, 0.7414, 1e-12) {
			return chem.H2AtDistance(distance)
		}
		return chem.H2(), nil
	case "water":
		return chem.WaterLike(), nil
	case "hubbard":
		return chem.Hubbard(sites, t, u, electrons), nil
	case "synthetic":
		return chem.Synthetic(chem.SyntheticOptions{NumOrbitals: orbitals, NumElectrons: electrons, Seed: seed}), nil
	}
	return nil, fmt.Errorf("%w: molecule %q", core.ErrInvalidArgument, kind)
}

func encode(m *chem.MolecularData, name string) (*pauli.Op, error) {
	if name == "jw" {
		return chem.QubitHamiltonian(m), nil
	}
	var enc *fermion.Encoding
	var err error
	switch name {
	case "bk":
		enc, err = fermion.BravyiKitaevEncoding(m.NumSpinOrbitals())
	case "parity":
		enc, err = fermion.ParityEncoding(m.NumSpinOrbitals())
	default:
		return nil, fmt.Errorf("%w: encoding %q", core.ErrInvalidArgument, name)
	}
	if err != nil {
		return nil, err
	}
	q, err := enc.Transform(chem.FermionicHamiltonian(m))
	if err != nil {
		return nil, err
	}
	return q.HermitianPart(), nil
}

func inspect(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	op, n, err := pauli.ReadOp(f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("qubits:          %d\n", n)
	fmt.Printf("terms:           %d\n", op.NumTerms())
	fmt.Printf("1-norm:          %.6f\n", op.OneNorm())
	fmt.Printf("hermitian:       %v\n", op.IsHermitian(1e-9))
	fmt.Printf("avg weight:      %.2f\n", fermion.AverageWeight(op))
	fmt.Printf("max weight:      %d\n", fermion.MaxWeight(op))
	fmt.Printf("QWC groups:      %d\n", len(pauli.GroupQWC(op, n)))
	syms := pauli.FindZSymmetries(op, n)
	fmt.Printf("Z2 symmetries:   %d\n", len(syms))
	if n <= 12 {
		e, _, err := linalg.LanczosGround(pauli.OpMatVec{Op: op, N: n}, linalg.LanczosOptions{})
		if err == nil {
			fmt.Printf("ground energy:   %.8f\n", e)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hamiltonian:", err)
	os.Exit(1)
}
