package vqesim

// Benchmark harness: one benchmark per figure of the paper's evaluation
// plus the performance/ablation benches called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// The paper-style series (full 12–30 qubit sweeps, printed as rows) are
// produced by cmd/benchfigs; these benches regenerate each figure's
// headline numbers as custom metrics so regressions show up in CI.

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/ansatz"
	"repro/internal/batch"
	"repro/internal/chem"
	"repro/internal/circuit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/density"
	"repro/internal/fermion"
	"repro/internal/noise"
	"repro/internal/pauli"
	"repro/internal/state"
	"repro/internal/telemetry"
	"repro/internal/trotter"
	"repro/internal/vqe"
)

// uccsdCircuit builds the UCCSD ansatz circuit used across the Figure
// benches (8 electrons as in the downfolded-water family).
func uccsdCircuit(b *testing.B, qubits, electrons int) *circuit.Circuit {
	b.Helper()
	u, err := ansatz.NewUCCSD(qubits, electrons)
	if err != nil {
		b.Fatal(err)
	}
	return u.Circuit(make([]float64, u.NumParameters()))
}

// BenchmarkFig1aUCCSDGateCount regenerates Figure 1a: UCCSD ansatz gate
// count versus qubit count. The paper's curve reaches ~2.5M gates at 30
// qubits; shape (quartic growth) is the reproduction target.
func BenchmarkFig1aUCCSDGateCount(b *testing.B) {
	for _, n := range []int{12, 16, 20, 24} {
		b.Run(fmt.Sprintf("qubits=%d", n), func(b *testing.B) {
			var gates int
			for i := 0; i < b.N; i++ {
				gates = uccsdCircuit(b, n, 8).GateCount()
			}
			b.ReportMetric(float64(gates), "gates")
		})
	}
}

// BenchmarkFig1bPauliTermCount regenerates Figure 1b: Pauli terms in the
// downfolded H2O-like observable versus qubit count (paper: ~30k at 30
// qubits; this model is calibrated to ≈27k).
func BenchmarkFig1bPauliTermCount(b *testing.B) {
	for _, orb := range []int{6, 8, 10, 12} {
		b.Run(fmt.Sprintf("qubits=%d", 2*orb), func(b *testing.B) {
			var terms int
			for i := 0; i < b.N; i++ {
				terms = chem.QubitHamiltonian(chem.WaterLikeScaled(orb)).NumTerms()
			}
			b.ReportMetric(float64(terms), "terms")
		})
	}
}

// BenchmarkFig1cStateVectorMemory regenerates Figure 1c: state-vector
// bytes versus qubit count (16 B per amplitude; 16 GiB at 30 qubits). The
// small sizes also measure real allocation cost.
func BenchmarkFig1cStateVectorMemory(b *testing.B) {
	for _, n := range []int{12, 16, 20, 24, 30} {
		b.Run(fmt.Sprintf("qubits=%d", n), func(b *testing.B) {
			bytes := state.MemoryBytes(n)
			if n <= 22 {
				for i := 0; i < b.N; i++ {
					s := state.New(n, state.Options{})
					_ = s
				}
			}
			b.ReportMetric(float64(bytes)/(1<<30), "GiB")
		})
	}
}

// BenchmarkFig3CachingGateCount regenerates Figure 3: gates per VQE energy
// evaluation, non-caching versus caching execution. The paper reports 3–5
// orders of magnitude savings growing with system size.
func BenchmarkFig3CachingGateCount(b *testing.B) {
	for _, orb := range []int{6, 8, 10, 12} {
		n := 2 * orb
		b.Run(fmt.Sprintf("qubits=%d", n), func(b *testing.B) {
			var gc vqe.GateCost
			for i := 0; i < b.N; i++ {
				h := chem.QubitHamiltonian(chem.WaterLikeScaled(orb))
				gc = vqe.CostModel(h, uccsdCircuit(b, n, 8).GateCount())
			}
			b.ReportMetric(float64(gc.NonCachingTotal), "noncaching_gates")
			b.ReportMetric(float64(gc.CachingTotal), "caching_gates")
			b.ReportMetric(gc.SavingsFactor(), "savings_x")
		})
	}
}

// BenchmarkFig4GateFusion regenerates Figure 4: UCCSD gate counts before
// and after fusion for 4/6/8-qubit circuits (paper: 221→68, 2283→954,
// 10809→5208, i.e. >50% reduction).
func BenchmarkFig4GateFusion(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("qubits=%d", n), func(b *testing.B) {
			c := uccsdCircuit(b, n, n/2)
			var fused *circuit.Circuit
			for i := 0; i < b.N; i++ {
				fused = circuit.Fuse(c, 2)
			}
			orig := c.GateCount()
			after := fused.GateCount()
			b.ReportMetric(float64(orig), "original_gates")
			b.ReportMetric(float64(after), "fused_gates")
			b.ReportMetric(100*(1-float64(after)/float64(orig)), "reduction_%")
		})
	}
}

// BenchmarkFig5AdaptVQE regenerates Figure 5: Adapt-VQE on the 12-qubit
// downfolded-water model converging below 1 mHa (paper: ~16 iterations;
// this model: ~12).
func BenchmarkFig5AdaptVQE(b *testing.B) {
	m := chem.WaterLike()
	h := chem.QubitHamiltonian(m)
	fci, err := chem.FCI(m)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := ansatz.NewPool(12, 8)
	if err != nil {
		b.Fatal(err)
	}
	var iters int
	var finalErr float64
	for i := 0; i < b.N; i++ {
		res, err := vqe.Adapt(h, pool, 12, 8, vqe.AdaptOptions{
			MaxIterations: 25,
			Reference:     fci.Energy,
			EnergyTol:     core.ChemicalAccuracy,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("Adapt-VQE did not converge")
		}
		iters = len(res.History)
		finalErr = math.Abs(res.Energy - fci.Energy)
	}
	b.ReportMetric(float64(iters), "iterations_to_1mHa")
	b.ReportMetric(finalErr*1000, "final_error_mHa")
}

// BenchmarkDirectVsSampling times one VQE energy evaluation under the four
// execution strategies the paper compares (§4.1–4.2): direct expectation,
// exact rotated readout with and without the post-ansatz cache, and shot
// sampling.
func BenchmarkDirectVsSampling(b *testing.B) {
	m := chem.Synthetic(chem.SyntheticOptions{NumOrbitals: 4, NumElectrons: 4, Seed: 9})
	h := chem.QubitHamiltonian(m)
	u, err := ansatz.NewUCCSD(8, 4)
	if err != nil {
		b.Fatal(err)
	}
	params := make([]float64, u.NumParameters())
	for i := range params {
		params[i] = 0.02 * float64(i%5)
	}
	cases := []struct {
		name string
		opts vqe.Options
	}{
		{"direct", vqe.Options{Mode: vqe.Direct}},
		{"rotated-cached", vqe.Options{Mode: vqe.Rotated, Caching: true}},
		{"rotated-noncached", vqe.Options{Mode: vqe.Rotated, Caching: false}},
		{"sampled-8192", vqe.Options{Mode: vqe.Sampled, Caching: true, Shots: 8192}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			drv, err := vqe.New(h, u, tc.opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drv.Energy(params)
			}
			st := drv.Stats()
			b.ReportMetric(float64(st.GatesApplied)/float64(b.N), "gates/eval")
		})
	}
}

// BenchmarkParallelScaling measures goroutine-parallel gate application
// (the stand-in for the paper's GPU-core parallelism) at several worker
// counts.
func BenchmarkParallelScaling(b *testing.B) {
	const n = 18
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := state.New(n, state.Options{Workers: workers, ParallelThreshold: 1024})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(c)
			}
		})
	}
}

// BenchmarkClusterBackend exercises the simulated multi-node backend,
// reporting communication volume alongside wall time.
func BenchmarkClusterBackend(b *testing.B) {
	const n = 16
	c := circuit.New(n)
	c.H(0)
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			var moved uint64
			for i := 0; i < b.N; i++ {
				cl, err := cluster.New(n, ranks)
				if err != nil {
					b.Fatal(err)
				}
				cl.Run(c)
				moved = cl.Stats().BytesTransferred
			}
			b.ReportMetric(float64(moved)/(1<<20), "MiB_moved")
		})
	}
}

// BenchmarkFusionSpeedup measures end-to-end simulation time of the same
// UCCSD circuit unfused versus fused (the payoff of Figure 4).
func BenchmarkFusionSpeedup(b *testing.B) {
	const n = 14
	c := uccsdCircuit(b, n, 4)
	fused := circuit.Fuse(c, 2)
	b.Run("unfused", func(b *testing.B) {
		s := state.New(n, state.Options{Workers: 1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Run(c)
		}
	})
	b.Run("fused", func(b *testing.B) {
		s := state.New(n, state.Options{Workers: 1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Run(fused)
		}
	})
}

// BenchmarkFusionWidth ablates the fusion window (paper §4.3's design
// choice to cap blocks at two qubits): width-1 versus width-2.
func BenchmarkFusionWidth(b *testing.B) {
	c := uccsdCircuit(b, 10, 4)
	for _, width := range []int{1, 2} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			var count int
			for i := 0; i < b.N; i++ {
				count = circuit.Fuse(c, width).GateCount()
			}
			b.ReportMetric(float64(count), "fused_gates")
		})
	}
}

// BenchmarkBatchedExpectation compares per-term evaluation (one amplitude
// sweep per Pauli string) against the batched X-mask-grouped engine (one
// sweep per group) across term counts and qubit widths — the optimization
// targeting the paper's Fig 1b regime where term count, not qubit count,
// dominates energy-evaluation wall clock. Reported metrics: observable
// size (terms), sweep count (xgroups), and the batched-vs-naive energy
// deviation (must stay below 1e-10).
func BenchmarkBatchedExpectation(b *testing.B) {
	cases := []struct {
		name   string
		qubits int
		orb    int
	}{
		{"qubits=16/terms~3k", 16, 8},
		{"qubits=18/terms~5k", 18, 9},
	}
	for _, tc := range cases {
		h := chem.QubitHamiltonian(chem.WaterLikeScaled(tc.orb))
		s := state.New(tc.qubits, state.Options{})
		prep := circuit.New(tc.qubits)
		for q := 0; q < tc.orb; q++ {
			prep.X(q)
		}
		for q := 0; q < tc.qubits; q++ {
			prep.RY(0.07*float64(q+1), q)
		}
		for q := 0; q+1 < tc.qubits; q++ {
			prep.CX(q, q+1)
		}
		s.Run(prep)
		plan := pauli.NewPlan(h)
		naive := pauli.ExpectationNaive(s, h, pauli.ExpectationOptions{Workers: 1})
		batched := plan.Evaluate(s, pauli.ExpectationOptions{Workers: 1})
		if math.Abs(naive-batched) > 1e-10 {
			b.Fatalf("batched energy deviates from naive: %v vs %v", batched, naive)
		}
		for _, eng := range []string{"per-term", "batched"} {
			b.Run(tc.name+"/"+eng, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if eng == "batched" {
						plan.Evaluate(s, pauli.ExpectationOptions{Workers: 1})
					} else {
						pauli.ExpectationNaive(s, h, pauli.ExpectationOptions{Workers: 1})
					}
				}
				b.ReportMetric(float64(h.NumTerms()), "terms")
				b.ReportMetric(float64(plan.NumGroups()), "xgroups")
				b.ReportMetric(math.Abs(naive-batched), "abs_deviation")
			})
		}
	}
}

// BenchmarkTelemetryOverhead prices the telemetry instrumentation on the
// 16-qubit batched expectation sweep: the same evaluation is timed with
// recording disabled (the production fast path — one atomic load and a
// branch per instrumented event) and enabled. The enabled_overhead_%
// metric is the full recording cost; the disabled path is strictly
// cheaper, which bounds the "telemetry off" tax well under the 2% budget.
func BenchmarkTelemetryOverhead(b *testing.B) {
	h := chem.QubitHamiltonian(chem.WaterLikeScaled(8)) // 16 qubits
	s := state.New(16, state.Options{Workers: 1})
	prep := circuit.New(16)
	for q := 0; q < 8; q++ {
		prep.X(q)
	}
	for q := 0; q < 16; q++ {
		prep.RY(0.07*float64(q+1), q)
	}
	for q := 0; q+1 < 16; q++ {
		prep.CX(q, q+1)
	}
	s.Run(prep)
	plan := pauli.NewPlan(h)
	opts := pauli.ExpectationOptions{Workers: 1}
	sweeps := func(k int) time.Duration {
		start := time.Now()
		for i := 0; i < k; i++ {
			plan.Evaluate(s, opts)
		}
		return time.Since(start)
	}
	sweeps(2) // warm caches before timing either mode

	const perMode = 4
	var disabled, enabled time.Duration
	telemetry.Disable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		telemetry.Disable()
		disabled += sweeps(perMode)
		telemetry.Enable()
		enabled += sweeps(perMode)
	}
	b.StopTimer()
	telemetry.Disable()
	telemetry.Reset()

	total := perMode * b.N
	b.ReportMetric(float64(disabled.Nanoseconds())/float64(total), "disabled_ns/sweep")
	b.ReportMetric(float64(enabled.Nanoseconds())/float64(total), "enabled_ns/sweep")
	b.ReportMetric(100*(float64(enabled)-float64(disabled))/float64(disabled), "enabled_overhead_%")
}

// BenchmarkBatchedExpectationParallel sweeps the worker-pool width of the
// batched engine (padded per-chunk accumulator blocks) on the 16-qubit
// molecular observable.
func BenchmarkBatchedExpectationParallel(b *testing.B) {
	h := chem.QubitHamiltonian(chem.WaterLikeScaled(8))
	plan := pauli.NewPlan(h)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := state.New(16, state.Options{Workers: workers})
			s.Run(uccsdCircuit(b, 16, 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.Evaluate(s, pauli.ExpectationOptions{Workers: workers})
			}
		})
	}
}

// BenchmarkExpectationWorkers sweeps the worker count of the direct
// expectation reduction (paper §4.2.3 parallelization).
func BenchmarkExpectationWorkers(b *testing.B) {
	const n = 16
	m := chem.Synthetic(chem.SyntheticOptions{NumOrbitals: n / 2, NumElectrons: 4, Seed: 3, Threshold: 1e-3})
	h := chem.QubitHamiltonian(m)
	s := state.New(n, state.Options{})
	prep := circuit.New(n)
	for q := 0; q < 4; q++ {
		prep.X(q)
	}
	for q := 0; q < n; q++ {
		prep.RY(0.1*float64(q+1), q)
	}
	s.Run(prep)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pauli.Expectation(s, h, pauli.ExpectationOptions{Workers: workers})
			}
		})
	}
}

// BenchmarkDensityNoise measures the density-matrix backend with and
// without a depolarizing model (DM-Sim substrate ablation).
func BenchmarkDensityNoise(b *testing.B) {
	const n = 6
	c := circuit.New(n).H(0)
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	b.Run("noiseless", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := density.New(n)
			if err := m.Run(c, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("depolarizing", func(b *testing.B) {
		model := density.DepolarizingModel(0.001, 0.01)
		for i := 0; i < b.N; i++ {
			m := density.New(n)
			if err := m.Run(c, model); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVQEEndToEnd times the complete H2 workflow (the quickstart
// path) so facade-level regressions are visible.
func BenchmarkVQEEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := GroundStateVQE(H2(), VQEConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if res.ErrorVsFCI > 1e-5 {
			b.Fatalf("H2 VQE failed to converge: %v", res.ErrorVsFCI)
		}
	}
}

// BenchmarkEncodingWeights compares Pauli-string locality of the
// Jordan–Wigner and Bravyi–Kitaev mappings on the H2O-like Hamiltonian
// (extension: alternative fermion-to-qubit encodings).
func BenchmarkEncodingWeights(b *testing.B) {
	m := chem.WaterLikeScaled(8) // 16 qubits
	fh := chem.FermionicHamiltonian(m)
	for _, mk := range []struct {
		name string
		make func(int) (*fermion.Encoding, error)
	}{
		{"jordan-wigner", fermion.JordanWignerEncoding},
		{"bravyi-kitaev", fermion.BravyiKitaevEncoding},
	} {
		b.Run(mk.name, func(b *testing.B) {
			var avg float64
			var mx int
			for i := 0; i < b.N; i++ {
				enc, err := mk.make(16)
				if err != nil {
					b.Fatal(err)
				}
				q, err := enc.Transform(fh)
				if err != nil {
					b.Fatal(err)
				}
				avg = fermion.AverageWeight(q)
				mx = fermion.MaxWeight(q)
			}
			b.ReportMetric(avg, "avg_weight")
			b.ReportMetric(float64(mx), "max_weight")
		})
	}
}

// BenchmarkTrotterOrders measures the error/cost trade-off between
// first- and second-order product formulas on a transverse-field Ising
// model.
func BenchmarkTrotterOrders(b *testing.B) {
	h := pauli.NewOp()
	const n = 6
	for i := 0; i+1 < n; i++ {
		h.Add(pauli.String{Z: 3 << uint(i)}, -1)
	}
	for i := 0; i < n; i++ {
		h.Add(pauli.String{X: 1 << uint(i)}, -0.8)
	}
	for _, order := range []trotter.Order{trotter.First, trotter.Second} {
		b.Run(fmt.Sprintf("order=%d", order), func(b *testing.B) {
			var errVal float64
			for i := 0; i < b.N; i++ {
				var err error
				errVal, err = trotter.Error(h, n, nil, trotter.Options{Time: 1, Steps: 8, Order: order})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(errVal, "l2_error")
		})
	}
}

// BenchmarkTrajectoryNoise measures trajectory-averaged noisy expectation
// throughput (the scalable alternative to the density-matrix backend).
func BenchmarkTrajectoryNoise(b *testing.B) {
	c := circuit.New(8).H(0)
	for q := 0; q+1 < 8; q++ {
		c.CX(q, q+1)
	}
	obs := pauli.NewOp().Add(pauli.String{Z: 0x81}, 1) // Z0·Z7
	for i := 0; i < b.N; i++ {
		if _, err := noise.Expectation(c, obs, noise.Model{P1: 0.01, P2: 0.02},
			noise.Options{Trajectories: 100, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchThroughput measures the §6.2 batched-execution scheduler
// evaluating many parameter sets concurrently versus sequentially.
func BenchmarkBatchThroughput(b *testing.B) {
	h := chem.QubitHamiltonian(chem.H2())
	u, err := ansatz.NewUCCSD(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	sets := make([][]float64, 32)
	for i := range sets {
		sets[i] = []float64{0.01 * float64(i), -0.02 * float64(i), 0.005 * float64(i)}
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := batch.NewPool(workers)
			for i := 0; i < b.N; i++ {
				if _, err := p.Energies(h, u, sets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTapering measures Z₂ qubit tapering of molecular Hamiltonians
// (extension: symmetry-based resource reduction composing with
// downfolding).
func BenchmarkTapering(b *testing.B) {
	m := chem.Synthetic(chem.SyntheticOptions{NumOrbitals: 4, NumElectrons: 4, Seed: 2})
	h := chem.QubitHamiltonian(m)
	n := m.NumSpinOrbitals()
	var reduced int
	for i := 0; i < b.N; i++ {
		res, err := chem.TaperedHamiltonian(m)
		if err != nil {
			b.Fatal(err)
		}
		reduced = res.NumQubits
	}
	b.ReportMetric(float64(n), "qubits_before")
	b.ReportMetric(float64(reduced), "qubits_after")
	_ = h
}
