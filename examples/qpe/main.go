// Quantum phase estimation on H2: prepare the Hartree–Fock determinant,
// run Trotterized controlled evolution plus an inverse QFT, and decode the
// ground-state energy from the ancilla phase distribution — the second
// algorithm of the paper's workflow.
package main

import (
	"fmt"
	"log"
	"math"

	vqesim "repro"
)

func main() {
	mol := vqesim.H2()
	exact, err := vqesim.ExactGroundEnergy(mol)
	if err != nil {
		log.Fatal(err)
	}

	for _, ancillas := range []int{5, 7, 9} {
		res, err := vqesim.GroundStateQPE(mol, vqesim.QPEConfig{AncillaQubits: ancillas})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ancillas=%d: E = %+.6f Ha  (exact %+.6f, |ΔE| = %.2e, resolution %.2e, confidence %.2f)\n",
			ancillas, res.Energy, exact, math.Abs(res.Energy-exact), res.Resolution, res.Confidence)
	}
	fmt.Println("\nresolution halves with each extra ancilla; the estimate converges on the FCI energy")
}
