// Noisy simulation demo: the same noisy Bell-pair workload evaluated by
// (a) the exact density-matrix backend (DM-Sim substrate) and (b) Pauli-
// trajectory averaging on the state-vector backend — the technique that
// scales noise studies past the 4ⁿ density-matrix wall. The two must
// agree within statistics.
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/noise"
	"repro/internal/pauli"
)

func main() {
	c := circuit.New(2).H(0).CX(0, 1)
	obs := pauli.NewOp().Add(pauli.MustParse("ZZ"), 1)

	fmt.Println("noisy Bell pair, ⟨Z₀Z₁⟩ under depolarizing noise:")
	fmt.Println("p1     p2     density-matrix   trajectories (2000)")
	for _, rates := range [][2]float64{{0, 0}, {0.005, 0.02}, {0.02, 0.05}, {0.05, 0.1}} {
		p1, p2 := rates[0], rates[1]

		dm := density.New(2)
		if err := dm.Run(c, density.DepolarizingModel(p1, p2)); err != nil {
			log.Fatal(err)
		}
		exact := dm.Expectation(obs)

		res, err := noise.Expectation(c, obs, noise.Model{P1: p1, P2: p2},
			noise.Options{Trajectories: 2000, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.3f  %.3f  %+.4f          %+.4f ± %.4f  (%.2f errors/traj)\n",
			p1, p2, exact, res.Mean, res.StdErr, res.MeanErrors)
	}
	fmt.Println("\nthe trajectory estimator is unbiased: it converges on the exact")
	fmt.Println("density-matrix value while using only pure-state (2ⁿ) memory")
}
