// Excited states by variational quantum deflation (VQD): sequentially
// minimize ⟨H⟩ plus overlap penalties against previously found states.
// Run on the Hubbard dimer, whose exact spectrum is known in closed form.
package main

import (
	"fmt"
	"log"

	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/linalg"
	"repro/internal/vqe"
)

func main() {
	site := chem.Hubbard(2, 1.0, 4.0, 2)
	scf, err := chem.RHF(site, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	m := scf.Molecule // MO basis: the aufbau reference is the true RHF state
	fmt.Printf("model: %s (half filling, E_RHF = %.6f)\n\n", m.Name, scf.Energy)
	h := chem.QubitHamiltonian(m)
	u, err := ansatz.NewUCCSD(4, 2)
	if err != nil {
		log.Fatal(err)
	}

	states, err := vqe.Deflation(h, u, vqe.DeflationOptions{NumStates: 3, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Exact reference: diagonalize the 2-electron sector.
	sp, _, err := chem.SectorMatrix(chem.FermionicHamiltonian(m), 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := linalg.EighJacobi(sp.Dense())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("state   E(VQD)       sector spectrum (exact)")
	for i, s := range states {
		fmt.Printf("%5d   %+.6f", i, s.Energy)
		if i < len(exact.Values) {
			fmt.Printf("     %+.6f", exact.Values[i])
		}
		fmt.Println()
	}
	fmt.Println("\neach VQD state is found by deflating the ones before it with overlap")
	fmt.Println("penalties; the spin-conserving UCCSD manifold only reaches singlet")
	fmt.Println("states, so triplet sector levels are skipped — compare the columns")
}
