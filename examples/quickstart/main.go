// Quickstart: compute the ground-state energy of H2 with VQE in a few
// lines using the canonical spec API, and compare against the exact
// (FCI) reference — the minimal version of the paper's end-to-end
// workflow. The zero-valued RunSpec selects the defaults: UCCSD VQE on
// H2/STO-3G, L-BFGS, direct expectation.
package main

import (
	"context"
	"fmt"
	"log"

	vqesim "repro"
)

func main() {
	res, err := vqesim.Run(context.Background(), &vqesim.RunSpec{}, vqesim.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("molecule: %s (spec %s)\n", res.Molecule, res.SpecHash)
	fmt.Printf("Hartree–Fock energy: %.6f Ha\n", res.HartreeFock)
	fmt.Printf("VQE energy:          %.6f Ha\n", res.Energy)
	fmt.Printf("FCI energy:          %.6f Ha\n", res.Exact)
	fmt.Printf("error vs FCI:        %.2e Ha\n", res.ErrorVsExact)
	fmt.Printf("energy evaluations:  %d (gates applied: %d)\n",
		res.EnergyEvaluations, res.GatesApplied)

	if res.ErrorVsExact < vqesim.ChemicalAccuracy {
		fmt.Println("→ chemical accuracy reached ✓")
	}
}
