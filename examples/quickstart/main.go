// Quickstart: compute the ground-state energy of H2 with VQE in a few
// lines using the public facade, and compare against the exact (FCI)
// reference — the minimal version of the paper's end-to-end workflow.
package main

import (
	"fmt"
	"log"

	vqesim "repro"
)

func main() {
	mol := vqesim.H2()
	fmt.Printf("molecule: %s\n", mol.Name)
	fmt.Printf("Hartree–Fock energy: %.6f Ha\n", vqesim.HartreeFockEnergy(mol))

	res, err := vqesim.GroundStateVQE(mol, vqesim.VQEConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VQE energy:          %.6f Ha\n", res.Energy)
	fmt.Printf("FCI energy:          %.6f Ha\n", res.Exact)
	fmt.Printf("error vs FCI:        %.2e Ha\n", res.ErrorVsFCI)
	fmt.Printf("energy evaluations:  %d (gates applied: %d)\n",
		res.Stats.EnergyEvaluations, res.Stats.GatesApplied)

	if res.ErrorVsFCI < vqesim.ChemicalAccuracy {
		fmt.Println("→ chemical accuracy reached ✓")
	}
}
