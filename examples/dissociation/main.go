// Dissociation curve of H2 computed as a sweep family: the potential-
// energy-surface workload the downfolding literature targets (paper §2)
// plus the "incremental optimization" idea from §6.2. The SweepSpec
// below is exactly the document you would POST to a vqed daemon's
// /v1/sweeps endpoint; RunSweep executes the same expansion in-process —
// points in ascending bond-length order, each warm-started from its
// nearest finished neighbor, Hamiltonian construction shared.
package main

import (
	"context"
	"fmt"
	"log"

	vqesim "repro"
)

func main() {
	ss := &vqesim.SweepSpec{
		Base: vqesim.RunSpec{
			Algorithm: "vqe",
			Molecule:  vqesim.MoleculeSpec{Kind: "h2"},
		},
		Axis: vqesim.SweepAxis{
			Param:  vqesim.AxisDistance,
			Values: []float64{0.4, 0.5, 0.6, 0.7414, 0.9, 1.1, 1.4, 1.8, 2.4, 3.2},
		},
	}

	fmt.Println("H2/STO-3G dissociation curve (energies in hartree):")
	fmt.Println("R (Å)    E(HF)       E(VQE)      E(FCI)      |VQE−FCI|   evals")
	coldEvals, warmEvals, warmPoints := 0, 0, 0
	res, err := vqesim.RunSweep(context.Background(), ss, vqesim.SweepRunOptions{
		OnPoint: func(po vqesim.SweepPointOutcome) {
			if po.Error != "" {
				log.Fatalf("R=%.4f: %s", po.Value, po.Error)
			}
			r := po.Result
			fmt.Printf("%.4f  %+.6f  %+.6f  %+.6f  %9.2e  %5d\n",
				po.Value, r.HartreeFock, r.Energy, r.Exact,
				r.ErrorVsExact, r.EnergyEvaluations)
			if po.WarmStarted {
				warmEvals += r.EnergyEvaluations
				warmPoints++
			} else {
				coldEvals += r.EnergyEvaluations
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfamily %s: %d points, %d energy evaluations total\n",
		res.FamilyHash, len(res.Points), res.EnergyEvaluations)
	fmt.Printf("warm-started geometries averaged %.1f evaluations vs %d cold\n",
		float64(warmEvals)/float64(warmPoints), coldEvals)
	fmt.Println("note how RHF fails at dissociation while VQE tracks FCI everywhere")
}
