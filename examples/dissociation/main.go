// Dissociation curve of H2 computed with warm-started VQE: the potential-
// energy-surface workload the downfolding literature targets (paper §2)
// plus the "incremental optimization" idea from §6.2 — the optimal
// parameters of each geometry seed the next, cutting optimizer work.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/opt"
	"repro/internal/vqe"
)

func main() {
	distances := []float64{0.4, 0.5, 0.6, 0.7414, 0.9, 1.1, 1.4, 1.8, 2.4, 3.2}

	fmt.Println("H2/STO-3G dissociation curve (energies in hartree):")
	fmt.Println("R (Å)    E(HF)       E(VQE)      E(FCI)      |VQE−FCI|   evals")
	var warm []float64
	coldEvals, warmEvals := 0, 0
	for i, r := range distances {
		m, err := chem.H2AtDistance(r)
		if err != nil {
			log.Fatal(err)
		}
		h := chem.QubitHamiltonian(m)
		u, err := ansatz.NewUCCSD(4, 2)
		if err != nil {
			log.Fatal(err)
		}
		drv, err := vqe.New(h, u, vqe.Options{Mode: vqe.Direct})
		if err != nil {
			log.Fatal(err)
		}
		x0 := make([]float64, u.NumParameters())
		if warm != nil {
			copy(x0, warm) // §6.2: warm start from the previous geometry
		}
		res, err := drv.MinimizeLBFGS(x0, opt.LBFGSOptions{})
		if err != nil {
			log.Fatal(err)
		}
		warm = res.Params

		fci, err := chem.FCI(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.4f  %+.6f  %+.6f  %+.6f  %9.2e  %5d\n",
			r, chem.HartreeFockEnergy(m), res.Energy, fci.Energy,
			math.Abs(res.Energy-fci.Energy), res.Optimizer.Evaluations)
		if i == 0 {
			coldEvals = res.Optimizer.Evaluations
		} else {
			warmEvals += res.Optimizer.Evaluations
		}
	}
	fmt.Printf("\nwarm-started geometries averaged %.1f evaluations vs %d cold\n",
		float64(warmEvals)/float64(len(distances)-1), coldEvals)
	fmt.Println("note how RHF fails at dissociation while VQE tracks FCI everywhere")
}
