// Scaling demo: the same GHZ-entangling workload executed on the
// single-node engine with growing worker pools, and on the simulated
// multi-rank cluster backend with its communication accounting — the HPC
// execution models of the paper (§4, NWQ-Sim on Perlmutter).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/circuit"
	"repro/internal/cluster"
	"repro/internal/state"
)

func workload(n int) *circuit.Circuit {
	c := circuit.New(n)
	for layer := 0; layer < 4; layer++ {
		for q := 0; q < n; q++ {
			c.RY(0.1*float64(layer+q), q)
		}
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
		}
	}
	return c
}

func main() {
	const n = 20
	c := workload(n)
	fmt.Printf("workload: %d qubits, %d gates (state vector: %d MiB)\n\n",
		n, c.GateCount(), state.MemoryBytes(n)>>20)

	fmt.Println("single-node engine, worker-pool sweep:")
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		s := state.New(n, state.Options{Workers: workers, ParallelThreshold: 1024})
		start := time.Now()
		s.Run(c)
		elapsed := time.Since(start)
		if workers == 1 {
			base = elapsed
		}
		fmt.Printf("  workers=%d: %8v  (speedup %.2fx)\n",
			workers, elapsed.Round(time.Millisecond), float64(base)/float64(elapsed))
	}

	fmt.Println("\nsimulated multi-rank cluster backend:")
	for _, ranks := range []int{1, 2, 4, 8} {
		cl, err := cluster.New(n, ranks)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		cl.Run(c)
		elapsed := time.Since(start)
		st := cl.Stats()
		fmt.Printf("  ranks=%d: %8v  local=%d global=%d swaps=%d moved=%.1f MiB\n",
			ranks, elapsed.Round(time.Millisecond),
			st.LocalGates, st.GlobalGates, st.QubitSwaps,
			float64(st.BytesTransferred)/(1<<20))
	}
	fmt.Println("\ngates on high (\"global\") qubits cost inter-rank traffic — the")
	fmt.Println("local/global asymmetry that dominates multi-node statevector scaling")
}
