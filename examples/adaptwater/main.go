// Adapt-VQE on the 12-qubit downfolded-water model: the reproduction of
// the paper's Figure 5 experiment, described as a RunSpec document — the
// same shape the vqe CLI and the vqed daemon accept. The ansatz grows
// one operator per iteration (selected by energy gradient) until the
// energy is within 1 milli-hartree of the exact ground state.
package main

import (
	"context"
	"fmt"
	"log"

	vqesim "repro"
)

func main() {
	spec := &vqesim.RunSpec{
		Algorithm: "adapt",
		Molecule:  vqesim.MoleculeSpec{Kind: "water"},
	}
	spec.Adapt.MaxIterations = 25
	res, err := vqesim.Run(context.Background(), spec, vqesim.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("molecule: %s (%d qubits, %d Pauli terms)\n",
		res.Molecule, res.NumQubits, res.NumTerms)

	fmt.Printf("exact (FCI) energy: %.8f\n\n", res.Exact)
	fmt.Println("iter  operator             energy        ΔE (mHa)  depth  gates")
	for _, it := range res.History {
		fmt.Printf("%4d  %-18s %12.8f %9.3f %6d %6d\n",
			it.Iteration, it.Operator, it.Energy, 1000*it.ErrorVsExact,
			it.CircuitDepth, it.GateCount)
	}
	if res.Converged {
		fmt.Printf("\nreached chemical accuracy (1 mHa) in %d iterations\n", len(res.History))
		fmt.Println("(the paper's Figure 5 shows the same convergence shape, ~16 iterations)")
	} else {
		fmt.Println("\ndid not converge within the iteration budget")
	}
}
