// Gate-fusion inspection: the paper's Figure 4 experiment as a runnable
// example. Builds UCCSD ansatz circuits, applies the 2-qubit-window fusion
// pass, verifies semantic equivalence, and times the simulation payoff.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/ansatz"
	"repro/internal/circuit"
	"repro/internal/pauli"
	"repro/internal/state"
)

func main() {
	fmt.Println("UCCSD gate counts before/after fusion (paper Fig 4: >50% reduction):")
	fmt.Println("qubits  original  fused  reduction")
	for _, n := range []int{4, 6, 8} {
		u, err := ansatz.NewUCCSD(n, n/2)
		if err != nil {
			log.Fatal(err)
		}
		params := make([]float64, u.NumParameters())
		for i := range params {
			params[i] = 0.05 * float64(i+1)
		}
		c := u.Circuit(params)
		f := circuit.Fuse(c, 2)
		fmt.Printf("%6d  %8d  %5d  %8.1f%%\n",
			n, c.GateCount(), f.GateCount(),
			100*(1-float64(f.GateCount())/float64(c.GateCount())))

		// Fusion must not change the physics: compare a Z-expectation.
		obs := pauli.NewOp()
		z0, _ := pauli.Single('Z', 0)
		obs.Add(z0, 1)
		s1 := state.New(n, state.Options{})
		s1.Run(c)
		s2 := state.New(n, state.Options{})
		s2.Run(f)
		e1 := pauli.Expectation(s1, obs, pauli.ExpectationOptions{})
		e2 := pauli.Expectation(s2, obs, pauli.ExpectationOptions{})
		if math.Abs(e1-e2) > 1e-9 {
			log.Fatalf("fusion changed semantics: %v vs %v", e1, e2)
		}
	}

	// Wall-clock payoff on a larger circuit.
	const n = 16
	u, err := ansatz.NewUCCSD(n, 4)
	if err != nil {
		log.Fatal(err)
	}
	c := u.Circuit(make([]float64, u.NumParameters()))
	f := circuit.Fuse(c, 2)
	fmt.Printf("\nstate-vector passes at %d qubits: %d unfused → %d fused (%.1f%% fewer)\n",
		n, c.GateCount(), f.GateCount(), 100*(1-float64(f.GateCount())/float64(c.GateCount())))
	for _, tc := range []struct {
		name string
		circ *circuit.Circuit
	}{{"unfused", c}, {"fused", f}} {
		s := state.New(n, state.Options{Workers: 1})
		start := time.Now()
		s.Run(tc.circ)
		fmt.Printf("  %-8s %v\n", tc.name, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nnote: each gate is one full pass over the state vector. On the paper's")
	fmt.Println("bandwidth-bound GPU kernels, fewer passes translate directly into speedup;")
	fmt.Println("on this compute-bound CPU engine the win is the pass/gate count itself.")
}
