// Quantum Krylov subspace diagonalization (QKSD): span a subspace with
// real-time-evolved copies of the Hartree–Fock state and solve the
// projected generalized eigenproblem — FCI-quality energies with no
// variational optimization, and a sharp cross-check on VQE results.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/chem"
	"repro/internal/qpe"
	"repro/internal/vqe"
)

func main() {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, err := chem.FCI(m)
	if err != nil {
		log.Fatal(err)
	}
	prep := qpe.HartreeFockPrep(4, 2)

	fmt.Printf("molecule: %s, FCI = %.8f Ha\n\n", m.Name, fci.Energy)
	fmt.Println("dim   E0(exact evo)   |ΔE|        E0(Trotter-8)   |ΔE|")
	for _, dim := range []int{1, 2, 3, 4, 5} {
		exact, err := vqe.KrylovDiagonalize(h, 4, prep, vqe.KrylovOptions{Dimension: dim, Exact: true})
		if err != nil {
			log.Fatal(err)
		}
		trot, err := vqe.KrylovDiagonalize(h, 4, prep, vqe.KrylovOptions{Dimension: dim, TrotterSteps: 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d   %+.8f   %.2e    %+.8f   %.2e\n",
			dim,
			exact.Energies[0], math.Abs(exact.Energies[0]-fci.Energy),
			trot.Energies[0], math.Abs(trot.Energies[0]-fci.Energy))
	}
	fmt.Println("\ntwo evolved basis states already pin the H2 ground energy; on")
	fmt.Println("hardware the matrix elements would come from Hadamard tests")
}
