package vqesim

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/pauli"
)

func TestGroundStateVQEH2(t *testing.T) {
	res, err := GroundStateVQE(H2(), VQEConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-(-1.13727)) > 5e-4 {
		t.Errorf("H2 VQE energy %v", res.Energy)
	}
	if res.ErrorVsFCI > 1e-6 {
		t.Errorf("error vs FCI %v", res.ErrorVsFCI)
	}
}

func TestGroundStateVQEModes(t *testing.T) {
	for _, mode := range []string{"direct", "rotated"} {
		res, err := GroundStateVQE(H2(), VQEConfig{Mode: mode, Optimizer: "nelder-mead"})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.ErrorVsFCI > 1e-4 {
			t.Errorf("%s: error %v", mode, res.ErrorVsFCI)
		}
	}
	if _, err := GroundStateVQE(H2(), VQEConfig{Mode: "bogus"}); err == nil {
		t.Error("bogus mode accepted")
	}
	if _, err := GroundStateVQE(H2(), VQEConfig{Optimizer: "bogus"}); err == nil {
		t.Error("bogus optimizer accepted")
	}
}

func TestGroundStateVQEWithFusion(t *testing.T) {
	res, err := GroundStateVQE(H2(), VQEConfig{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorVsFCI > 1e-6 {
		t.Errorf("fusion changed physics: %v", res.ErrorVsFCI)
	}
}

func TestGroundStateAdaptVQEH2(t *testing.T) {
	res, exact, err := GroundStateAdaptVQE(H2(), AdaptConfig{MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.Energy-exact) > ChemicalAccuracy {
		t.Errorf("adapt error %v", math.Abs(res.Energy-exact))
	}
}

func TestGroundStateQPEH2(t *testing.T) {
	res, err := GroundStateQPE(H2(), QPEConfig{})
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := ExactGroundEnergy(H2())
	if math.Abs(res.Energy-exact) > 2*res.Resolution {
		t.Errorf("QPE %v vs FCI %v (res %v)", res.Energy, exact, res.Resolution)
	}
}

func TestExactAndHFEnergies(t *testing.T) {
	fci, err := ExactGroundEnergy(H2())
	if err != nil {
		t.Fatal(err)
	}
	hf := HartreeFockEnergy(H2())
	if fci >= hf {
		t.Error("FCI above HF")
	}
}

func TestDownfoldShrinksObservable(t *testing.T) {
	m := Synthetic(3, 2, 5)
	full := Hamiltonian(m)
	eff, err := Downfold(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eff.MaxQubit() >= 4 {
		t.Error("downfolded observable too wide")
	}
	if full.MaxQubit() < 5 {
		t.Error("full observable unexpectedly narrow")
	}
}

func TestSimulateAndExpectation(t *testing.T) {
	c := NewCircuit(4).H(0).CX(0, 1)
	s := Simulate(c, 1)
	if math.Abs(s.Probability(1)-0.5) > 1e-9 {
		t.Error("Bell probability wrong")
	}
	// Any state's H2 energy sits above FCI (variational bound).
	e := Expectation(s, Hamiltonian(H2()))
	fci, _ := ExactGroundEnergy(H2())
	if e < fci-1e-9 {
		t.Errorf("expectation %v below FCI %v violates variational bound", e, fci)
	}
}

func TestFuseReduces(t *testing.T) {
	c := NewCircuit(2).H(0).T(0).S(0).CX(0, 1).RZ(0.3, 1).CX(0, 1)
	f := Fuse(c, 2)
	if f.GateCount() >= c.GateCount() {
		t.Errorf("no reduction: %d → %d", c.GateCount(), f.GateCount())
	}
}

func TestCachingGateCost(t *testing.T) {
	non, cached, err := CachingGateCost(H2())
	if err != nil {
		t.Fatal(err)
	}
	if non <= cached {
		t.Errorf("caching not cheaper: %d vs %d", non, cached)
	}
	if float64(non)/float64(cached) < 2 {
		t.Errorf("savings factor too small: %d/%d", non, cached)
	}
}

func TestHubbardFacade(t *testing.T) {
	m := Hubbard(2, 1, 4, 2)
	e, err := ExactGroundEnergy(m)
	if err != nil {
		t.Fatal(err)
	}
	want := (4 - math.Sqrt(16+16)) / 2
	if math.Abs(e-want) > 1e-9 {
		t.Errorf("dimer energy %v, want %v", e, want)
	}
}

func TestTaperedHamiltonianFacade(t *testing.T) {
	op, n, err := TaperedHamiltonian(H2())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("tapered width %d, want 1", n)
	}
	if op.NumTerms() == 0 {
		t.Fatal("empty tapered operator")
	}
}

func TestHamiltonianBKSameSpectrumAsJW(t *testing.T) {
	m := H2()
	bk, err := HamiltonianBK(m)
	if err != nil {
		t.Fatal(err)
	}
	fci, _ := ExactGroundEnergy(m)
	// BK ground energy over the full space must be ≤ the JW particle-
	// sector FCI and in fact equal to the JW global ground.
	jw := Hamiltonian(m)
	eJW := groundEnergyOf(t, jw, 4)
	eBK := groundEnergyOf(t, bk, 4)
	if math.Abs(eJW-eBK) > 1e-8 {
		t.Errorf("BK ground %v vs JW ground %v", eBK, eJW)
	}
	_ = fci
}

func groundEnergyOf(t *testing.T, op *Observable, n int) float64 {
	t.Helper()
	e, _, err := linalgGround(op, n)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestH2AtDistanceFacade(t *testing.T) {
	m, err := H2AtDistance(0.7414)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ExactGroundEnergy(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-(-1.13727)) > 1e-3 {
		t.Errorf("equilibrium FCI %v", e)
	}
}

func TestNoisyExpectationFacade(t *testing.T) {
	c := NewCircuit(2).H(0).CX(0, 1)
	obs := zzObservable()
	mean, stderr, err := NoisyExpectation(c, obs, 0.02, 0.05, 500)
	if err != nil {
		t.Fatal(err)
	}
	if mean >= 1 || mean < 0.5 {
		t.Errorf("noisy ⟨ZZ⟩ = %v", mean)
	}
	if stderr <= 0 {
		t.Error("no statistical error reported")
	}
}

// linalgGround diagonalizes a small observable.
func linalgGround(op *Observable, n int) (float64, []complex128, error) {
	return linalg.GroundState(op.ToDense(n))
}

// zzObservable returns Z₀Z₁.
func zzObservable() *Observable {
	return pauli.NewOp().Add(pauli.MustParse("ZZ"), 1)
}

func TestWaterLikeFacade(t *testing.T) {
	m := WaterLike()
	if m.NumSpinOrbitals() != 12 || m.NumElectrons != 8 {
		t.Errorf("water model shape: %d qubits, %d electrons", m.NumSpinOrbitals(), m.NumElectrons)
	}
	h := Hamiltonian(m)
	if h.NumTerms() < 1000 {
		t.Errorf("implausibly small observable: %d terms", h.NumTerms())
	}
}
